// Asymmetric-topology coverage.
//
// The formulation allows arbitrary B and D with no relationship between
// them ("we don't assume any relationship between B and D"); every grid
// instance in the main suites has B = D = symmetric Manhattan distances,
// so ordered-pair bookkeeping bugs (a_{j1j2} b_{i1i2} vs a_{j2j1} b_{i2i1})
// would slip through.  These tests run the whole stack on random
// *asymmetric* B and D matrices.
#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "core/qhat.hpp"
#include "partition/cost.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

/// Random problem on an asymmetric custom topology: B(i1,i2) != B(i2,i1)
/// in general, D likewise and unrelated to B.
PartitionProblem make_asymmetric_problem(std::uint64_t seed) {
  Rng rng(seed);
  const std::int32_t n = 6;
  const std::int32_t m = 3;

  Netlist netlist("asym");
  for (std::int32_t j = 0; j < n; ++j) {
    std::string name = "c";
    name += std::to_string(j);
    netlist.add_component(name, rng.next_double(0.5, 2.0));
  }
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = a + 1; b < n; ++b) {
      if (rng.next_bool(0.5)) {
        netlist.add_wires(a, b, static_cast<std::int32_t>(rng.next_int(1, 4)));
      }
    }
  }

  Matrix<double> b_matrix(m, m, 0.0);
  Matrix<double> d_matrix(m, m, 0.0);
  for (std::int32_t i1 = 0; i1 < m; ++i1) {
    for (std::int32_t i2 = 0; i2 < m; ++i2) {
      if (i1 == i2) continue;
      b_matrix(i1, i2) = static_cast<double>(rng.next_int(1, 9));
      d_matrix(i1, i2) = static_cast<double>(rng.next_int(1, 4));
    }
  }
  const double capacity = netlist.total_size() / m * 1.7;
  PartitionTopology topology = PartitionTopology::custom(
      std::move(b_matrix), std::move(d_matrix),
      std::vector<double>(static_cast<std::size_t>(m), capacity));

  TimingConstraints timing(n);
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = a + 1; b < n; ++b) {
      if (rng.next_bool(0.3)) {
        timing.add(a, b, static_cast<double>(rng.next_int(1, 3)));
      }
    }
  }
  return PartitionProblem(std::move(netlist), std::move(topology),
                          std::move(timing));
}

class AsymmetricSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AsymmetricSweep, TopologyReallyAsymmetric) {
  const auto problem = make_asymmetric_problem(GetParam());
  EXPECT_FALSE(problem.topology().wire_cost().is_symmetric());
}

TEST_P(AsymmetricSweep, PenalizedValueMatchesDenseForm) {
  const auto problem = make_asymmetric_problem(GetParam());
  const QhatMatrix qhat(problem, 100.0);
  const auto dense = qhat.materialize();
  Rng rng(GetParam() ^ 0xaa);
  for (int trial = 0; trial < 20; ++trial) {
    const auto assignment = test::random_complete(
        problem.num_components(), problem.num_partitions(), rng);
    const auto y = problem.to_y(assignment);
    double direct = 0.0;
    for (std::int32_t r1 = 0; r1 < dense.rows(); ++r1) {
      for (std::int32_t r2 = 0; r2 < dense.cols(); ++r2) {
        direct += y[static_cast<std::size_t>(r1)] *
                  y[static_cast<std::size_t>(r2)] * dense(r1, r2);
      }
    }
    EXPECT_NEAR(qhat.penalized_value(assignment), direct, 1e-9);
  }
}

TEST_P(AsymmetricSweep, EtaMatchesDenseGather) {
  const auto problem = make_asymmetric_problem(GetParam());
  const QhatMatrix qhat(problem, 100.0);
  const auto dense = qhat.materialize();
  Rng rng(GetParam() ^ 0xbb);
  const auto u = test::random_complete(problem.num_components(),
                                       problem.num_partitions(), rng);
  const auto y = problem.to_y(u);
  std::vector<double> eta(static_cast<std::size_t>(problem.flat_size()));
  qhat.eta(u, eta);
  for (std::int64_t s = 0; s < problem.flat_size(); ++s) {
    double expected = 0.0;
    for (std::int64_t r = 0; r < problem.flat_size(); ++r) {
      expected += y[static_cast<std::size_t>(r)] *
                  dense(static_cast<std::int32_t>(r),
                        static_cast<std::int32_t>(s));
    }
    EXPECT_NEAR(eta[static_cast<std::size_t>(s)], expected, 1e-9);
  }
}

TEST_P(AsymmetricSweep, MoveAndSwapDeltasExact) {
  const auto problem = make_asymmetric_problem(GetParam());
  const QhatMatrix qhat(problem, 100.0);
  Rng rng(GetParam() ^ 0xcc);
  Assignment assignment = test::random_complete(problem.num_components(),
                                                problem.num_partitions(), rng);
  for (int trial = 0; trial < 30; ++trial) {
    const auto j = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    const auto target = static_cast<PartitionId>(
        rng.next_below(problem.num_partitions()));
    const double before = qhat.penalized_value(assignment);
    EXPECT_NEAR(qhat.move_delta_penalized(assignment, j, target),
                [&] {
                  Assignment moved = assignment;
                  moved.set(j, target);
                  return qhat.penalized_value(moved);
                }() - before,
                1e-9);
    const auto a = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    const auto b = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    if (a != b) {
      EXPECT_NEAR(qhat.swap_delta_penalized(assignment, a, b),
                  [&] {
                    Assignment swapped = assignment;
                    swapped.set(a, assignment[b]);
                    swapped.set(b, assignment[a]);
                    return qhat.penalized_value(swapped);
                  }() - before,
                  1e-9);
    }
    assignment.set(j, target);  // drift through the space
  }
}

TEST_P(AsymmetricSweep, CostDeltasExact) {
  const auto problem = make_asymmetric_problem(GetParam());
  Rng rng(GetParam() ^ 0xdd);
  Assignment assignment = test::random_complete(problem.num_components(),
                                                problem.num_partitions(), rng);
  const Matrix<double> empty_p;
  for (int trial = 0; trial < 30; ++trial) {
    const auto j = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    const auto target = static_cast<PartitionId>(
        rng.next_below(problem.num_partitions()));
    const double before = problem.objective(assignment);
    const double delta = move_delta_objective(
        problem.netlist(), problem.topology(), empty_p, problem.alpha(),
        problem.beta(), assignment, j, target);
    Assignment moved = assignment;
    moved.set(j, target);
    EXPECT_NEAR(delta, problem.objective(moved) - before, 1e-9);
    assignment = moved;
  }
}

TEST_P(AsymmetricSweep, BurkardSoundAndNearOptimalOnAsymmetricInstances) {
  // With an asymmetric B the STEP 3 field eta = Qhat^T u sees only one of
  // the two ordered wire terms (the listed algorithm's property, not an
  // implementation artifact), so exact optimality is not guaranteed the
  // way it empirically is on symmetric instances.  Require soundness and
  // a bounded gap instead, and that multistart never hurts.
  const auto problem = make_asymmetric_problem(GetParam());
  const auto exact = brute_force_constrained(problem);
  if (!exact.found) GTEST_SKIP();
  BurkardOptions options;
  options.iterations = 80;
  options.penalty = 200.0;  // entries of B reach 9 * multiplicity 4 = 36
  const auto result = solve_qbp_multistart(problem, 4, GetParam(), options);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_TRUE(problem.is_feasible(result.best_feasible));
  EXPECT_GE(result.best_feasible_objective, exact.value - 1e-9);
  EXPECT_LE(result.best_feasible_objective, exact.value * 2.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsymmetricSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace qbp
