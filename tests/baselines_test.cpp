#include <gtest/gtest.h>

#include "baselines/gfm.hpp"
#include "baselines/gkl.hpp"
#include "core/brute_force.hpp"
#include "core/initial.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

/// A tiny instance together with a feasible start, or nullopt-ish skip.
struct Fixture {
  PartitionProblem problem;
  Assignment start;
  bool ok = false;
};

Fixture make_fixture(std::uint64_t seed, double capacity_factor = 1.8) {
  auto spec = test::TinySpec{};
  spec.num_components = 8;
  spec.num_partitions = 3;
  spec.capacity_factor = capacity_factor;
  spec.seed = seed;
  Fixture fixture{test::make_tiny_problem(spec), Assignment{}, false};
  const auto initial = make_initial(fixture.problem,
                                    InitialStrategy::kQbpZeroWireCost, seed);
  fixture.start = initial.assignment;
  fixture.ok = initial.feasible;
  return fixture;
}

// ----------------------------------------------------------------- GFM ----

class GfmSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GfmSweep, NeverWorsensAndStaysFeasible) {
  auto fixture = make_fixture(GetParam());
  if (!fixture.ok) GTEST_SKIP() << "no feasible start";
  const double start_cost = fixture.problem.objective(fixture.start);
  const auto result = solve_gfm(fixture.problem, fixture.start);
  EXPECT_LE(result.objective, start_cost + 1e-9);
  EXPECT_TRUE(fixture.problem.is_feasible(result.assignment));
  EXPECT_NEAR(result.objective, fixture.problem.objective(result.assignment),
              1e-9);
  EXPECT_GE(result.passes, 1);
}

TEST_P(GfmSweep, DeterministicAcrossRuns) {
  auto fixture = make_fixture(GetParam());
  if (!fixture.ok) GTEST_SKIP();
  const auto a = solve_gfm(fixture.problem, fixture.start);
  const auto b = solve_gfm(fixture.problem, fixture.start);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GfmSweep, ::testing::Range<std::uint64_t>(1, 9));

TEST(Gfm, FindsObviousImprovement) {
  // Two heavily-connected components far apart, everything else empty.
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_wires(0, 1, 10);
  auto topo = PartitionTopology::grid(1, 4, CostKind::kManhattan, 3.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(2));
  Assignment start(2, 4);
  start.set(0, 0);
  start.set(1, 3);
  const auto result = solve_gfm(problem, start);
  EXPECT_DOUBLE_EQ(result.objective, 0.0);  // co-located
}

TEST(Gfm, RespectsCapacityDuringMoves) {
  // Co-locating would be ideal but capacity forbids it.
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_wires(0, 1, 10);
  auto topo = PartitionTopology::grid(1, 4, CostKind::kManhattan, 1.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(2));
  Assignment start(2, 4);
  start.set(0, 0);
  start.set(1, 3);
  const auto result = solve_gfm(problem, start);
  EXPECT_TRUE(problem.satisfies_capacity(result.assignment));
  // Best legal: adjacent partitions, cost 2 * 10 * 1.
  EXPECT_DOUBLE_EQ(result.objective, 20.0);
}

TEST(Gfm, RespectsTimingDuringMoves) {
  // Moving a next to b would help wirelength but violates a constraint to c.
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_component("c", 1.0);
  netlist.add_wires(0, 1, 10);
  auto topo = PartitionTopology::grid(1, 4, CostKind::kManhattan, 3.0);
  TimingConstraints timing(3);
  timing.add(0, 2, 1.0);  // a must stay within distance 1 of c
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 std::move(timing));
  Assignment start(3, 4);
  start.set(0, 0);  // a
  start.set(1, 3);  // b (far)
  start.set(2, 0);  // c
  const auto result = solve_gfm(problem, start);
  EXPECT_TRUE(problem.is_feasible(result.assignment));
  // a can reach partition 1 at most (distance 1 from c at 0) unless c moves
  // too; either way the a-c constraint must hold.
  EXPECT_LE(problem.topology().delay(result.assignment[0], result.assignment[2]),
            1.0);
}

TEST(Gfm, StopsAfterMaxPasses) {
  auto fixture = make_fixture(3);
  if (!fixture.ok) GTEST_SKIP();
  GfmOptions options;
  options.max_passes = 1;
  const auto result = solve_gfm(fixture.problem, fixture.start, options);
  EXPECT_EQ(result.passes, 1);
}

// ----------------------------------------------------------------- GKL ----

class GklSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GklSweep, NeverWorsensAndStaysFeasible) {
  auto fixture = make_fixture(GetParam());
  if (!fixture.ok) GTEST_SKIP();
  const double start_cost = fixture.problem.objective(fixture.start);
  const auto result = solve_gkl(fixture.problem, fixture.start);
  EXPECT_LE(result.objective, start_cost + 1e-9);
  EXPECT_TRUE(fixture.problem.is_feasible(result.assignment));
  EXPECT_LE(result.outer_loops, 6);
}

TEST_P(GklSweep, DeterministicAcrossRuns) {
  auto fixture = make_fixture(GetParam());
  if (!fixture.ok) GTEST_SKIP();
  const auto a = solve_gkl(fixture.problem, fixture.start);
  const auto b = solve_gkl(fixture.problem, fixture.start);
  EXPECT_EQ(a.assignment, b.assignment);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GklSweep, ::testing::Range<std::uint64_t>(1, 9));

TEST(Gkl, SwapsPreserveCapacityExactly) {
  // Sizes differ: swaps must respect the tighter bin.
  Netlist netlist;
  netlist.add_component("big", 2.0);
  netlist.add_component("small", 1.0);
  netlist.add_wires(0, 1, 1);
  auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan);
  topo.set_capacities({2.0, 1.0});  // big fits only in partition 0
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(2));
  Assignment start(2, 2);
  start.set(0, 0);
  start.set(1, 1);
  const auto result = solve_gkl(problem, start);
  // The only swap would put `big` (2.0) into capacity-1 partition: illegal.
  EXPECT_EQ(result.assignment, start);
  EXPECT_TRUE(problem.satisfies_capacity(result.assignment));
}

TEST(Gkl, PairedSwapEscapesWhereSingleMovesCannot) {
  // Two tight partitions, each full; improving requires a simultaneous
  // exchange -- exactly GKL's move class.
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_component("c", 1.0);
  netlist.add_component("d", 1.0);
  netlist.add_wires(0, 2, 5);  // a-c want to be together
  netlist.add_wires(1, 3, 5);  // b-d want to be together
  auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan, 2.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(4));
  Assignment start(4, 2);
  start.set(0, 0);
  start.set(1, 0);
  start.set(2, 1);
  start.set(3, 1);
  const auto result = solve_gkl(problem, start);
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
  EXPECT_GE(result.swaps_kept, 1);
}

TEST(Gkl, HonorsOuterLoopCutoff) {
  auto fixture = make_fixture(5);
  if (!fixture.ok) GTEST_SKIP();
  GklOptions options;
  options.max_outer_loops = 2;
  const auto result = solve_gkl(fixture.problem, fixture.start, options);
  EXPECT_LE(result.outer_loops, 2);
}

TEST(Gkl, TimingGuardsSwaps) {
  // Swapping would reduce wirelength but break a timing constraint.
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_wires(0, 1, 1);
  auto topo = PartitionTopology::grid(1, 3, CostKind::kManhattan, 1.0);
  TimingConstraints timing(2);
  timing.add(0, 1, 2.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 std::move(timing));
  Assignment start(2, 3);
  start.set(0, 0);
  start.set(1, 2);
  ASSERT_TRUE(problem.is_feasible(start));
  const auto result = solve_gkl(problem, start);
  EXPECT_TRUE(problem.is_feasible(result.assignment));
}

// --------------------------------------------- cross-method comparison ----

class MethodComparison : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MethodComparison, AllMethodsBeatOrMatchTheStart) {
  auto fixture = make_fixture(GetParam(), /*capacity_factor=*/2.0);
  if (!fixture.ok) GTEST_SKIP();
  const double start_cost = fixture.problem.objective(fixture.start);
  const auto gfm = solve_gfm(fixture.problem, fixture.start);
  const auto gkl = solve_gkl(fixture.problem, fixture.start);
  EXPECT_LE(gfm.objective, start_cost + 1e-9);
  EXPECT_LE(gkl.objective, start_cost + 1e-9);
  // Both remain violation-free ("guarantee that the final solution will be
  // violation-free").
  EXPECT_TRUE(fixture.problem.is_feasible(gfm.assignment));
  EXPECT_TRUE(fixture.problem.is_feasible(gkl.assignment));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MethodComparison,
                         ::testing::Values(2u, 4u, 6u, 8u));

}  // namespace
}  // namespace qbp
