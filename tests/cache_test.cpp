// Warm-start serving storage layer (service/cache.hpp) and the canonical
// fingerprint it is keyed by (core/fingerprint.hpp): invariance of the
// fingerprint under equivalent spellings, sensitivity to real instance
// changes, the spec-fingerprint determinism contract (threads excluded),
// LRU/eviction bookkeeping, digest edit distances, neighbor lookup, and the
// run_job cache orchestration (exact hits bit-identical, ECO warm starts
// validated against the submitted problem, cache-off equivalence).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/problem_io.hpp"
#include "netlist/netlist.hpp"
#include "service/cache.hpp"
#include "service/job.hpp"
#include "test_support.hpp"

namespace qbp::service {
namespace {

PartitionProblem cache_problem(std::uint64_t seed = 17) {
  return test::make_tiny_problem(
      {.num_components = 12, .num_partitions = 3, .seed = seed});
}

std::string problem_text(const PartitionProblem& problem) {
  std::ostringstream out;
  write_problem(out, problem);
  return out.str();
}

PartitionProblem reparse(const PartitionProblem& problem) {
  PartitionProblem out;
  std::istringstream in(problem_text(problem));
  const auto parsed = read_problem(in, out);
  EXPECT_TRUE(parsed.ok) << parsed.message;
  return out;
}

Job cache_job(const std::string& id, const PartitionProblem& problem) {
  Job job;
  job.id = id;
  job.problem_text = problem_text(problem);
  job.solver.starts = 2;
  job.solver.iterations = 40;
  job.solver.seed = 5;
  job.solver.validate = false;
  return job;
}

// ------------------------------------------------------- fingerprint ----

TEST(Fingerprint, InvariantToSerializationRoundTrip) {
  // The .qp writer rounds doubles to 6 significant digits, so canonicalize
  // the generated instance through one round trip first; every further
  // round trip must then preserve the fingerprint exactly (the property
  // the server relies on when re-serialized jobs come back).
  const PartitionProblem problem = reparse(cache_problem());
  EXPECT_TRUE(problem_fingerprint(problem) ==
              problem_fingerprint(reparse(problem)));
}

TEST(Fingerprint, InvariantToWireOrderAndSplitting) {
  const PartitionProblem problem = cache_problem();
  const std::int32_t n = problem.num_components();

  // Re-emit every merged bundle reversed and split as (m - 1) + 1.
  Netlist respelled("other_name");  // names are not part of the instance
  for (std::int32_t j = 0; j < n; ++j) {
    respelled.add_component("x" + std::to_string(j),
                            problem.netlist().component(j).size);
  }
  const auto& connections = problem.netlist().connection_matrix();
  for (std::int32_t a = n - 1; a >= 0; --a) {
    const auto neighbors = connections.row_indices(a);
    const auto weights = connections.row_values(a);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      if (neighbors[k] <= a) continue;
      if (weights[k] > 1) {
        respelled.add_wires(neighbors[k], a, weights[k] - 1);
        respelled.add_wires(a, neighbors[k], 1);
      } else {
        respelled.add_wires(neighbors[k], a, weights[k]);
      }
    }
  }
  const PartitionProblem equivalent(std::move(respelled), problem.topology(),
                                    problem.timing(),
                                    problem.linear_cost_matrix(),
                                    problem.alpha(), problem.beta());
  EXPECT_TRUE(problem_fingerprint(problem) == problem_fingerprint(equivalent));
}

TEST(Fingerprint, InvariantToAlphaBetaFolding) {
  // PP(alpha, beta) over (P, B) is the same instance as PP(1, 1) over
  // (alpha P, beta B): the fingerprint hashes the normalized form.
  const PartitionProblem problem = test::make_tiny_problem(
      {.num_components = 10, .num_partitions = 3, .with_linear_term = true,
       .seed = 23});
  EXPECT_TRUE(problem_fingerprint(problem) ==
              problem_fingerprint(problem.normalized()));
}

TEST(Fingerprint, SensitiveToRealInstanceChanges) {
  const PartitionProblem base = cache_problem();
  const Hash128 fingerprint = problem_fingerprint(base);

  {  // one component size changes
    Netlist netlist("resized");
    for (std::int32_t j = 0; j < base.num_components(); ++j) {
      const double size = base.netlist().component(j).size;
      netlist.add_component("c" + std::to_string(j), j == 0 ? size * 2 : size);
    }
    const auto& connections = base.netlist().connection_matrix();
    for (std::int32_t a = 0; a < base.num_components(); ++a) {
      const auto neighbors = connections.row_indices(a);
      const auto weights = connections.row_values(a);
      for (std::size_t k = 0; k < neighbors.size(); ++k) {
        if (neighbors[k] <= a) continue;
        netlist.add_wires(a, neighbors[k], weights[k]);
      }
    }
    const PartitionProblem resized(std::move(netlist), base.topology(),
                                   base.timing(), base.linear_cost_matrix(),
                                   base.alpha(), base.beta());
    EXPECT_FALSE(problem_fingerprint(resized) == fingerprint);
  }
  {  // a different random instance
    EXPECT_FALSE(problem_fingerprint(cache_problem(18)) == fingerprint);
  }
}

TEST(SpecFingerprint, ExcludesThreadKnobsCoversResultShapingFields) {
  SolverSpec spec;
  spec.method = "qbp";
  spec.starts = 3;
  spec.iterations = 50;
  spec.seed = 9;
  const Hash128 base = spec_fingerprint(spec, false);

  // threads/inner_threads are excluded: the engine determinism contract
  // makes results bit-identical across them, so they must share a key.
  SolverSpec threaded = spec;
  threaded.threads = 8;
  threaded.inner_threads = 4;
  EXPECT_TRUE(spec_fingerprint(threaded, false) == base);

  // Every result-shaping field must change the key.
  SolverSpec changed = spec;
  changed.seed = 10;
  EXPECT_FALSE(spec_fingerprint(changed, false) == base);
  changed = spec;
  changed.iterations = 51;
  EXPECT_FALSE(spec_fingerprint(changed, false) == base);
  changed = spec;
  changed.starts = 4;
  EXPECT_FALSE(spec_fingerprint(changed, false) == base);
  changed = spec;
  changed.method = "sa";
  EXPECT_FALSE(spec_fingerprint(changed, false) == base);
  changed = spec;
  changed.presolve = !changed.presolve;
  EXPECT_FALSE(spec_fingerprint(changed, false) == base);
  changed = spec;
  changed.presolve_rules = "r0";
  EXPECT_FALSE(spec_fingerprint(changed, false) == base);
  EXPECT_FALSE(spec_fingerprint(spec, true) == base);  // validate resolved
}

// ------------------------------------------------------ edit distance ----

TEST(DigestEditDistance, CountsSizeCapacityAndBundleEdits) {
  const PartitionProblem base = cache_problem();
  const ProblemDigest a = make_digest(base);

  ProblemDigest b = a;
  EXPECT_EQ(digest_edit_distance(a, b, 100), 0);

  b.sizes[0] *= 0.9;
  b.sizes[3] *= 0.9;
  EXPECT_EQ(digest_edit_distance(a, b, 100), 2);

  b = a;
  b.capacities[1] += 1.0;
  EXPECT_EQ(digest_edit_distance(a, b, 100), 1);

  b = a;
  ASSERT_FALSE(b.bundles.empty());
  b.bundles[0].multiplicity += 1;  // multiplicity change: one edit
  EXPECT_EQ(digest_edit_distance(a, b, 100), 1);

  b = a;
  b.bundles.pop_back();  // dropped bundle: one edit
  EXPECT_EQ(digest_edit_distance(a, b, 100), 1);
}

TEST(DigestEditDistance, ShapeOrStructureMismatchIsOverBudget) {
  const ProblemDigest a = make_digest(cache_problem());
  ProblemDigest b = a;
  b.num_components += 1;
  EXPECT_EQ(digest_edit_distance(a, b, 10), 11);
  b = a;
  b.structure.lo ^= 1;  // different B'/D/P'/Dc
  EXPECT_EQ(digest_edit_distance(a, b, 10), 11);
}

TEST(DigestEditDistance, StopsEarlyAtTheLimit) {
  const ProblemDigest a = make_digest(cache_problem());
  ProblemDigest b = a;
  for (std::size_t j = 0; j < b.sizes.size(); ++j) b.sizes[j] *= 0.5;
  EXPECT_EQ(digest_edit_distance(a, b, 3), 4);  // limit + 1, not the total
}

// -------------------------------------------------------------- cache ----

Hash128 key_of(std::uint64_t tag) {
  Hash128 key;
  key.hi = tag;
  key.lo = ~tag;
  return key;
}

CachedSolve solve_of(double objective, bool feasible = true) {
  CachedSolve solve;
  solve.solver = "qbp";
  solve.feasible = feasible;
  solve.objective = objective;
  solve.assignment = {0, 1, 2};
  return solve;
}

TEST(SolutionCache, ExactHitsMissesAndStats) {
  SolutionCache cache(4);
  EXPECT_TRUE(cache.enabled());
  const Hash128 spec = key_of(99);
  CachedSolve out;
  EXPECT_FALSE(cache.find_exact(key_of(1), out));
  cache.insert(key_of(1), spec, ProblemDigest{}, solve_of(10.0));
  ASSERT_TRUE(cache.find_exact(key_of(1), out));
  EXPECT_DOUBLE_EQ(out.objective, 10.0);
  EXPECT_EQ(out.assignment, (std::vector<std::int32_t>{0, 1, 2}));

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_GT(stats.bytes, 0);
}

TEST(SolutionCache, EvictsLeastRecentlyUsedAtCapacity) {
  SolutionCache cache(2);
  const Hash128 spec = key_of(99);
  cache.insert(key_of(1), spec, ProblemDigest{}, solve_of(1.0));
  cache.insert(key_of(2), spec, ProblemDigest{}, solve_of(2.0));
  CachedSolve out;
  ASSERT_TRUE(cache.find_exact(key_of(1), out));  // bump 1: LRU victim is 2
  cache.insert(key_of(3), spec, ProblemDigest{}, solve_of(3.0));
  EXPECT_TRUE(cache.find_exact(key_of(1), out));
  EXPECT_FALSE(cache.find_exact(key_of(2), out));
  EXPECT_TRUE(cache.find_exact(key_of(3), out));
  EXPECT_EQ(cache.stats().evictions, 1);
  EXPECT_EQ(cache.stats().entries, 2);
}

TEST(SolutionCache, ReinsertRefreshesInPlace) {
  SolutionCache cache(2);
  const Hash128 spec = key_of(99);
  cache.insert(key_of(1), spec, ProblemDigest{}, solve_of(1.0));
  cache.insert(key_of(1), spec, ProblemDigest{}, solve_of(1.5));
  EXPECT_EQ(cache.stats().entries, 1);
  CachedSolve out;
  ASSERT_TRUE(cache.find_exact(key_of(1), out));
  EXPECT_DOUBLE_EQ(out.objective, 1.5);
}

TEST(SolutionCache, ZeroCapacityDisablesEverything) {
  SolutionCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.insert(key_of(1), key_of(99), ProblemDigest{}, solve_of(1.0));
  CachedSolve out;
  EXPECT_FALSE(cache.find_exact(key_of(1), out));
  EXPECT_EQ(cache.stats().inserts, 0);
  EXPECT_EQ(cache.stats().misses, 0);  // disabled lookups don't count
}

TEST(SolutionCache, FindNearestPrefersFewestEditsSameSpecFeasibleOnly) {
  const PartitionProblem base = cache_problem();
  const ProblemDigest digest = make_digest(base);
  const Hash128 spec = key_of(99);

  ProblemDigest near = digest;
  near.sizes[0] *= 0.9;  // 1 edit
  ProblemDigest far = digest;
  far.sizes[0] *= 0.9;
  far.sizes[1] *= 0.9;
  far.sizes[2] *= 0.9;  // 3 edits

  SolutionCache cache(8);
  cache.insert(key_of(1), spec, far, solve_of(30.0));
  cache.insert(key_of(2), spec, near, solve_of(20.0));
  cache.insert(key_of(3), key_of(55), digest, solve_of(5.0));   // wrong spec
  cache.insert(key_of(4), spec, digest, solve_of(7.0, false));  // infeasible

  SolutionCache::Neighbor neighbor;
  ASSERT_TRUE(cache.find_nearest(spec, digest, 10, neighbor));
  EXPECT_EQ(neighbor.edits, 1);
  EXPECT_DOUBLE_EQ(neighbor.solve.objective, 20.0);

  // Budget below the best available distance: no neighbor.
  ASSERT_TRUE(cache.find_nearest(spec, near, 10, neighbor));
  EXPECT_EQ(neighbor.edits, 0);  // exact-twin digest short-circuits
  ProblemDigest distant = digest;
  for (std::size_t j = 0; j < 5; ++j) distant.sizes[j] *= 0.5;
  EXPECT_FALSE(cache.find_nearest(spec, distant, 1, neighbor));
}

// ----------------------------------------------------- run_job + cache ----

TEST(RunJobCache, ExactResubmissionIsBitIdenticalAndFlagged) {
  const PartitionProblem problem = cache_problem();
  SolutionCache cache(8);
  const JobResult cold = run_job(cache_job("cold", problem), &cache);
  ASSERT_EQ(cold.status, "ok");
  EXPECT_FALSE(cold.cache_hit);

  const JobResult hit = run_job(cache_job("again", problem), &cache);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.status, "ok");
  EXPECT_EQ(hit.id, "again");  // per-submission stamp, not the cached id
  EXPECT_EQ(hit.objective, cold.objective);
  EXPECT_EQ(hit.assignment, cold.assignment);
  EXPECT_EQ(cache.stats().hits, 1);
}

TEST(RunJobCache, DifferentSpecMissesTheCache) {
  const PartitionProblem problem = cache_problem();
  SolutionCache cache(8);
  ASSERT_EQ(run_job(cache_job("cold", problem), &cache).status, "ok");
  Job other = cache_job("other-seed", problem);
  other.solver.seed = 6;
  EXPECT_FALSE(run_job(other, &cache).cache_hit);
}

TEST(RunJobCache, WarmStartSolvesPerturbedResubmission) {
  const PartitionProblem base = cache_problem();
  SolutionCache cache(8);
  const JobResult cold = run_job(cache_job("cold", base), &cache);
  ASSERT_EQ(cold.status, "ok");

  // Shrink one component: same structure, one digest edit -- the canonical
  // ECO re-submission.  (Shrinking keeps the cached assignment feasible.)
  Netlist netlist("eco");
  for (std::int32_t j = 0; j < base.num_components(); ++j) {
    const double size = base.netlist().component(j).size;
    netlist.add_component("c" + std::to_string(j), j == 0 ? size * 0.5 : size);
  }
  const auto& connections = base.netlist().connection_matrix();
  for (std::int32_t a = 0; a < base.num_components(); ++a) {
    const auto neighbors = connections.row_indices(a);
    const auto weights = connections.row_values(a);
    for (std::size_t k = 0; k < neighbors.size(); ++k) {
      if (neighbors[k] <= a) continue;
      netlist.add_wires(a, neighbors[k], weights[k]);
    }
  }
  const PartitionProblem perturbed(std::move(netlist), base.topology(),
                                   base.timing(), base.linear_cost_matrix(),
                                   base.alpha(), base.beta());

  const JobResult warm = run_job(cache_job("eco", perturbed), &cache);
  ASSERT_EQ(warm.status, "ok");
  EXPECT_TRUE(warm.warm_start);
  EXPECT_EQ(warm.solver, "eco");
  EXPECT_EQ(warm.eco_edits, 1);
  EXPECT_FALSE(warm.cache_hit);
  // The unconditional acceptance gate: the warm answer is feasible for the
  // *submitted* problem and its objective was recomputed against it.
  Assignment chosen(warm.assignment, perturbed.num_partitions());
  EXPECT_TRUE(perturbed.is_feasible(chosen));
  EXPECT_DOUBLE_EQ(warm.objective, perturbed.objective(chosen));

  // The warm result was inserted: resubmitting the perturbed problem is now
  // an exact hit, bit-identical to the warm answer.
  const JobResult again = run_job(cache_job("eco-again", perturbed), &cache);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.assignment, warm.assignment);
}

TEST(RunJobCache, CacheOffMatchesColdSolveBitForBit) {
  const PartitionProblem problem = cache_problem();
  const JobResult plain = run_job(cache_job("plain", problem));  // no cache

  SolutionCache cache(8);
  const JobResult with_cache = run_job(cache_job("cached", problem), &cache);
  EXPECT_EQ(with_cache.objective, plain.objective);
  EXPECT_EQ(with_cache.assignment, plain.assignment);

  Job opted_out = cache_job("opted-out", problem);
  opted_out.use_cache = false;
  const JobResult skipped = run_job(opted_out, &cache);
  EXPECT_FALSE(skipped.cache_hit);
  EXPECT_EQ(skipped.assignment, plain.assignment);

  SolutionCache disabled(0);
  const JobResult off = run_job(cache_job("off", problem), &disabled);
  EXPECT_FALSE(off.cache_hit);
  EXPECT_EQ(off.assignment, plain.assignment);
}

}  // namespace
}  // namespace qbp::service
