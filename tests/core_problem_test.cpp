#include <gtest/gtest.h>

#include "core/problem.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

// --------------------------------------------------------- flattening ----

TEST(Flattening, IndexBijection) {
  const auto problem = test::make_tiny_problem({.num_components = 5,
                                                .num_partitions = 4});
  for (PartitionId i = 0; i < 4; ++i) {
    for (std::int32_t j = 0; j < 5; ++j) {
      const auto r = problem.flat_index(i, j);
      EXPECT_GE(r, 0);
      EXPECT_LT(r, problem.flat_size());
      EXPECT_EQ(problem.partition_of(r), i);
      EXPECT_EQ(problem.component_of(r), j);
    }
  }
}

TEST(Flattening, MatchesPaperConvention) {
  // r = i + (j-1)*M in 1-based terms; 0-based r = i + j*M.  Column-major:
  // component j's block is contiguous.
  const auto problem = test::make_tiny_problem({.num_components = 3,
                                                .num_partitions = 4});
  EXPECT_EQ(problem.flat_index(0, 0), 0);
  EXPECT_EQ(problem.flat_index(3, 0), 3);
  EXPECT_EQ(problem.flat_index(0, 1), 4);
  EXPECT_EQ(problem.flat_index(2, 2), 10);
}

TEST(Flattening, ToYFromYRoundTrip) {
  const auto problem = test::make_tiny_problem({});
  Rng rng(3);
  const auto assignment = test::random_complete(problem.num_components(),
                                                problem.num_partitions(), rng);
  const auto y = problem.to_y(assignment);
  ASSERT_EQ(static_cast<std::int64_t>(y.size()), problem.flat_size());
  // Exactly one 1 per component column (C3).
  for (std::int32_t j = 0; j < problem.num_components(); ++j) {
    int ones = 0;
    for (PartitionId i = 0; i < problem.num_partitions(); ++i) {
      ones += y[static_cast<std::size_t>(problem.flat_index(i, j))];
    }
    EXPECT_EQ(ones, 1);
  }
  EXPECT_EQ(problem.from_y(y), assignment);
}

// ---------------------------------------------------------- accessors ----

TEST(Problem, BasicAccessors) {
  const auto problem = test::make_tiny_problem({.num_components = 6,
                                                .num_partitions = 3});
  EXPECT_EQ(problem.num_components(), 6);
  EXPECT_EQ(problem.num_partitions(), 3);
  EXPECT_EQ(problem.flat_size(), 18);
  EXPECT_DOUBLE_EQ(problem.alpha(), 1.0);
  EXPECT_DOUBLE_EQ(problem.beta(), 1.0);
}

TEST(Problem, LinearCostZeroWhenPEmpty) {
  const auto problem = test::make_tiny_problem({.with_linear_term = false});
  EXPECT_DOUBLE_EQ(problem.linear_cost(0, 0), 0.0);
}

TEST(Problem, FeasibilityChecks) {
  const auto problem = test::make_paper_example(/*capacity=*/1.0);
  Assignment good(3, 4);
  good.set(0, 3);  // a->4, b->2, c->1 in paper numbering
  good.set(1, 1);
  good.set(2, 0);
  EXPECT_TRUE(problem.satisfies_capacity(good));
  EXPECT_TRUE(problem.satisfies_timing(good));
  EXPECT_TRUE(problem.is_feasible(good));

  Assignment crowded(3, 4);
  for (std::int32_t j = 0; j < 3; ++j) crowded.set(j, 0);
  EXPECT_FALSE(problem.satisfies_capacity(crowded));  // capacity 1 each
  EXPECT_TRUE(problem.satisfies_timing(crowded));     // distance 0 everywhere

  Assignment late(3, 4);
  late.set(0, 0);
  late.set(1, 3);  // a-b distance 2 > 1
  late.set(2, 2);
  EXPECT_FALSE(problem.satisfies_timing(late));
  EXPECT_FALSE(problem.is_feasible(late));
}

TEST(Problem, ObjectiveAndWirelength) {
  const auto problem = test::make_paper_example();
  Assignment assignment(3, 4);
  assignment.set(0, 0);  // a -> 1
  assignment.set(1, 1);  // b -> 2
  assignment.set(2, 3);  // c -> 4
  // Wirelength: 5 * dist(1,2)=1 + 2 * dist(2,4)=1 -> 7; quadratic doubles it.
  EXPECT_DOUBLE_EQ(problem.wirelength(assignment), 7.0);
  EXPECT_DOUBLE_EQ(problem.objective(assignment), 14.0);
}

// ------------------------------------------------------------ scaling ----

class ScalingSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScalingSweep, NormalizedPreservesObjectiveExactly) {
  auto spec = test::TinySpec{};
  spec.with_linear_term = true;
  spec.seed = GetParam();
  const auto base = test::make_tiny_problem(spec);
  const PartitionProblem scaled(base.netlist(), base.topology(), base.timing(),
                                base.linear_cost_matrix(), /*alpha=*/2.5,
                                /*beta=*/0.75);
  const auto normalized = scaled.normalized();
  EXPECT_DOUBLE_EQ(normalized.alpha(), 1.0);
  EXPECT_DOUBLE_EQ(normalized.beta(), 1.0);

  Rng rng(GetParam() ^ 0x777);
  for (int trial = 0; trial < 20; ++trial) {
    const auto assignment = test::random_complete(
        base.num_components(), base.num_partitions(), rng);
    EXPECT_NEAR(scaled.objective(assignment), normalized.objective(assignment),
                1e-9);
    // Feasibility is untouched by scaling.
    EXPECT_EQ(scaled.is_feasible(assignment), normalized.is_feasible(assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScalingSweep, ::testing::Values(1u, 2u, 3u, 4u));

TEST(Problem, WithZeroWireCostKillsQuadraticTerm) {
  const auto base = test::make_tiny_problem({.seed = 5});
  const auto relaxed = base.with_zero_wire_cost();
  Rng rng(9);
  const auto assignment = test::random_complete(base.num_components(),
                                                base.num_partitions(), rng);
  EXPECT_DOUBLE_EQ(relaxed.objective(assignment), 0.0);
  // Delays (and so timing feasibility) are preserved.
  EXPECT_EQ(relaxed.satisfies_timing(assignment),
            base.satisfies_timing(assignment));
  EXPECT_EQ(relaxed.satisfies_capacity(assignment),
            base.satisfies_capacity(assignment));
}

TEST(Problem, WithoutTimingDropsC2Only) {
  const auto base = test::make_tiny_problem({.seed = 6});
  const auto relaxed = base.without_timing();
  EXPECT_EQ(relaxed.timing().count(), 0);
  Rng rng(10);
  const auto assignment = test::random_complete(base.num_components(),
                                                base.num_partitions(), rng);
  EXPECT_TRUE(relaxed.satisfies_timing(assignment));
  EXPECT_DOUBLE_EQ(relaxed.objective(assignment), base.objective(assignment));
}

// ----------------------------------------------------------- validate ----

TEST(Problem, ValidateAcceptsTinyInstance) {
  EXPECT_EQ(test::make_tiny_problem({}).validate(), "");
}

TEST(Problem, ValidateRejectsOverfullInstance) {
  Netlist netlist;
  netlist.add_component("a", 10.0);
  auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan, 1.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(1));
  EXPECT_NE(problem.validate().find("capacity"), std::string::npos);
}

TEST(Problem, ValidateRejectsNegativeP) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan, 5.0);
  Matrix<double> p(2, 1, 0.0);
  p(1, 0) = -1.0;
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(1), std::move(p));
  EXPECT_FALSE(problem.validate().empty());
}

TEST(Problem, ValidateRejectsMismatchedTiming) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan, 5.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(7));
  EXPECT_FALSE(problem.validate().empty());
}

}  // namespace
}  // namespace qbp
