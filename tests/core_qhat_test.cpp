#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/embedding.hpp"
#include "core/qhat.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

// -------------------------------------------- the Section 3.3 example ----

TEST(QhatPaperExample, ReproducesTheWorkedMatrix) {
  const auto problem = test::make_paper_example();
  const QhatMatrix qhat(problem, 50.0);

  // The paper's 12 x 12 matrix with p = 0 (no linear term in the example's
  // numeric entries).  Layout: rows/cols (a,1..4), (b,1..4), (c,1..4).
  const auto expected = Matrix<double>::from_rows({
      {0, 0, 0, 0, /**/ 0, 5, 5, 50, /**/ 0, 0, 0, 0},
      {0, 0, 0, 0, /**/ 5, 0, 50, 5, /**/ 0, 0, 0, 0},
      {0, 0, 0, 0, /**/ 5, 50, 0, 5, /**/ 0, 0, 0, 0},
      {0, 0, 0, 0, /**/ 50, 5, 5, 0, /**/ 0, 0, 0, 0},
      {0, 5, 5, 50, /**/ 0, 0, 0, 0, /**/ 0, 2, 2, 50},
      {5, 0, 50, 5, /**/ 0, 0, 0, 0, /**/ 2, 0, 50, 2},
      {5, 50, 0, 5, /**/ 0, 0, 0, 0, /**/ 2, 50, 0, 2},
      {50, 5, 5, 0, /**/ 0, 0, 0, 0, /**/ 50, 2, 2, 0},
      {0, 0, 0, 0, /**/ 0, 2, 2, 50, /**/ 0, 0, 0, 0},
      {0, 0, 0, 0, /**/ 2, 0, 50, 2, /**/ 0, 0, 0, 0},
      {0, 0, 0, 0, /**/ 2, 50, 0, 2, /**/ 0, 0, 0, 0},
      {0, 0, 0, 0, /**/ 50, 2, 2, 0, /**/ 0, 0, 0, 0},
  });
  EXPECT_EQ(qhat.materialize(), expected);
}

TEST(QhatPaperExample, DiagonalCarriesLinearCosts) {
  // Same example but with a non-trivial P: the paper's matrix shows
  // p_{1a} .. p_{4c} on the diagonal.
  Matrix<double> p(4, 3, 0.0);
  double value = 1.0;
  for (std::int32_t j = 0; j < 3; ++j) {
    for (PartitionId i = 0; i < 4; ++i) p(i, j) = value++;
  }
  const auto base = test::make_paper_example();
  const PartitionProblem problem(base.netlist(), base.topology(), base.timing(),
                                 p);
  const QhatMatrix qhat(problem, 50.0);
  for (std::int32_t j = 0; j < 3; ++j) {
    for (PartitionId i = 0; i < 4; ++i) {
      const auto r = problem.flat_index(i, j);
      EXPECT_DOUBLE_EQ(qhat.entry(r, r), p(i, j));
    }
  }
}

TEST(QhatPaperExample, TimingViolationEntryExplained) {
  // Section 3.3: "the entry at row (a,2) and column (b,3) ... D(2,3) = 2
  // which exceeds Dc(a,b) = 1.  Therefore we set it to a high cost 50."
  const auto problem = test::make_paper_example();
  const QhatMatrix qhat(problem, 50.0);
  const auto r1 = problem.flat_index(1, 0);  // (a, 2) 0-based partition 1
  const auto r2 = problem.flat_index(2, 1);  // (b, 3)
  EXPECT_DOUBLE_EQ(qhat.entry(r1, r2), 50.0);
}

// -------------------------------------------------- generic semantics ----

class QhatSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QhatSweep, PenalizedValueMatchesDenseQuadraticForm) {
  auto spec = test::TinySpec{};
  spec.num_components = 5;
  spec.num_partitions = 3;
  spec.with_linear_term = true;
  spec.seed = GetParam();
  const auto problem = test::make_tiny_problem(spec);
  const QhatMatrix qhat(problem, 50.0);
  const auto dense = qhat.materialize();

  Rng rng(GetParam() ^ 0x5555);
  for (int trial = 0; trial < 25; ++trial) {
    const auto assignment = test::random_complete(
        problem.num_components(), problem.num_partitions(), rng);
    const auto y = problem.to_y(assignment);
    double direct = 0.0;
    for (std::int32_t r1 = 0; r1 < dense.rows(); ++r1) {
      for (std::int32_t r2 = 0; r2 < dense.cols(); ++r2) {
        direct += y[static_cast<std::size_t>(r1)] *
                  y[static_cast<std::size_t>(r2)] * dense(r1, r2);
      }
    }
    EXPECT_NEAR(qhat.penalized_value(assignment), direct, 1e-9);
  }
}

TEST_P(QhatSweep, PenalizedEqualsTrueObjectiveOnFeasibleAssignments) {
  // Lemma 1 in action: Q coincides with Qhat over the feasible region, so
  // y^T Qhat y == y^T Q y whenever y has no timing violations.
  const auto problem = test::make_tiny_problem({.seed = GetParam()});
  const QhatMatrix qhat(problem, 50.0);
  Rng rng(GetParam() ^ 0x1234);
  int feasible_seen = 0;
  for (int trial = 0; trial < 200 && feasible_seen < 10; ++trial) {
    const auto assignment = test::random_complete(
        problem.num_components(), problem.num_partitions(), rng);
    if (!problem.satisfies_timing(assignment)) continue;
    ++feasible_seen;
    EXPECT_NEAR(qhat.penalized_value(assignment), problem.objective(assignment),
                1e-9);
    EXPECT_EQ(qhat.ordered_violations(assignment), 0);
  }
  EXPECT_GT(feasible_seen, 0);
}

TEST_P(QhatSweep, PenalizedExceedsObjectiveOnViolatingAssignments) {
  const auto problem = test::make_tiny_problem({.seed = GetParam()});
  const QhatMatrix qhat(problem, 50.0);
  Rng rng(GetParam() ^ 0x4321);
  for (int trial = 0; trial < 100; ++trial) {
    const auto assignment = test::random_complete(
        problem.num_components(), problem.num_partitions(), rng);
    const auto violations = qhat.ordered_violations(assignment);
    if (violations == 0) continue;
    EXPECT_GT(qhat.penalized_value(assignment), problem.objective(assignment));
  }
}

TEST_P(QhatSweep, EtaMatchesDenseColumnGather) {
  auto spec = test::TinySpec{};
  spec.num_components = 5;
  spec.num_partitions = 3;
  spec.with_linear_term = true;
  spec.seed = GetParam();
  const auto problem = test::make_tiny_problem(spec);
  const QhatMatrix qhat(problem, 50.0);
  const auto dense = qhat.materialize();

  Rng rng(GetParam() ^ 0xaaaa);
  const auto u = test::random_complete(problem.num_components(),
                                       problem.num_partitions(), rng);
  const auto y = problem.to_y(u);
  std::vector<double> eta(static_cast<std::size_t>(problem.flat_size()));
  qhat.eta(u, eta);
  for (std::int64_t s = 0; s < problem.flat_size(); ++s) {
    double expected = 0.0;
    for (std::int64_t r = 0; r < problem.flat_size(); ++r) {
      expected += y[static_cast<std::size_t>(r)] *
                  dense(static_cast<std::int32_t>(r), static_cast<std::int32_t>(s));
    }
    EXPECT_NEAR(eta[static_cast<std::size_t>(s)], expected, 1e-9)
        << "column " << s;
  }
}

// The parallel gather owns one column slice per chunk, so the flat buffer
// must come out bitwise identical at every thread count -- including on a
// problem large enough (> the 64-column grain) to actually fan out.
TEST(QhatEta, ParallelGatherIsBitIdentical) {
  auto spec = test::TinySpec{};
  spec.num_components = 300;
  spec.num_partitions = 8;
  spec.with_linear_term = true;
  spec.seed = 5;
  const auto problem = test::make_tiny_problem(spec);
  const QhatMatrix qhat(problem, 50.0);
  Rng rng(0x77);
  const auto u = test::random_complete(problem.num_components(),
                                       problem.num_partitions(), rng);
  std::vector<double> serial(static_cast<std::size_t>(problem.flat_size()));
  qhat.eta(u, serial);
  for (const std::int32_t threads : {2, 8}) {
    std::vector<double> parallel(static_cast<std::size_t>(problem.flat_size()),
                                 -1.0);
    qhat.eta(u, parallel, threads);
    EXPECT_EQ(parallel, serial) << "threads " << threads;
  }
}

TEST_P(QhatSweep, OmegaUpperBoundsRowActivity) {
  // Equation (2): omega_r >= sum_s qhat_{rs} y_s for every y in S.
  const auto problem = test::make_tiny_problem({.seed = GetParam()});
  const QhatMatrix qhat(problem, 50.0);
  const auto dense = qhat.materialize();
  const auto omega = qhat.omega();

  Rng rng(GetParam() ^ 0xbbbb);
  for (int trial = 0; trial < 50; ++trial) {
    const auto assignment = test::random_complete(
        problem.num_components(), problem.num_partitions(), rng);
    const auto y = problem.to_y(assignment);
    for (std::int64_t r = 0; r < problem.flat_size(); ++r) {
      double row_activity = 0.0;
      for (std::int64_t s = 0; s < problem.flat_size(); ++s) {
        row_activity += dense(static_cast<std::int32_t>(r),
                              static_cast<std::int32_t>(s)) *
                        y[static_cast<std::size_t>(s)];
      }
      EXPECT_GE(omega[static_cast<std::size_t>(r)], row_activity - 1e-9);
    }
  }
}

TEST_P(QhatSweep, MoveDeltaPenalizedMatchesRecomputation) {
  auto spec = test::TinySpec{};
  spec.with_linear_term = true;
  spec.seed = GetParam();
  const auto problem = test::make_tiny_problem(spec);
  const QhatMatrix qhat(problem, 50.0);
  Rng rng(GetParam() ^ 0xcccc);
  Assignment assignment = test::random_complete(problem.num_components(),
                                                problem.num_partitions(), rng);
  for (int trial = 0; trial < 40; ++trial) {
    const auto j = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    const auto target = static_cast<PartitionId>(
        rng.next_below(problem.num_partitions()));
    const double before = qhat.penalized_value(assignment);
    const double delta = qhat.move_delta_penalized(assignment, j, target);
    Assignment moved = assignment;
    moved.set(j, target);
    EXPECT_NEAR(delta, qhat.penalized_value(moved) - before, 1e-9);
    assignment = moved;
  }
}

TEST_P(QhatSweep, SwapDeltaPenalizedMatchesRecomputation) {
  auto spec = test::TinySpec{};
  spec.with_linear_term = true;
  spec.seed = GetParam();
  const auto problem = test::make_tiny_problem(spec);
  const QhatMatrix qhat(problem, 50.0);
  Rng rng(GetParam() ^ 0xdddd);
  Assignment assignment = test::random_complete(problem.num_components(),
                                                problem.num_partitions(), rng);
  for (int trial = 0; trial < 40; ++trial) {
    const auto a = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    const auto b = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    if (a == b) continue;
    const double before = qhat.penalized_value(assignment);
    const double delta = qhat.swap_delta_penalized(assignment, a, b);
    Assignment swapped = assignment;
    swapped.set(a, assignment[b]);
    swapped.set(b, assignment[a]);
    EXPECT_NEAR(delta, qhat.penalized_value(swapped) - before, 1e-9);
    assignment = swapped;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QhatSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 21u, 22u));

// ---------------------------------------------------------- embedding ----

TEST(Embedding, AnalysisComputesAbsSum) {
  const auto problem = test::make_paper_example();
  // sum(A) over ordered pairs = 2*(5+2) = 14; sum(B) = 16 (4x4 Manhattan
  // grid distances: 8 ones + 4 twos = 8 + 8).
  const auto analysis = analyze_embedding(problem, 50.0);
  EXPECT_DOUBLE_EQ(analysis.abs_sum, 14.0 * 16.0);
  EXPECT_DOUBLE_EQ(analysis.theorem1_threshold, 2.0 * 14.0 * 16.0);
  EXPECT_FALSE(analysis.provably_exact);  // 50 < 448
}

TEST(Embedding, Theorem1PenaltyExceedsThreshold) {
  const auto problem = test::make_paper_example();
  const double u = theorem1_penalty(problem);
  EXPECT_GT(u, analyze_embedding(problem, 0.0).theorem1_threshold);
  EXPECT_TRUE(analyze_embedding(problem, u).provably_exact);
}

TEST(Embedding, NominalNonzerosFarBelowDense) {
  const auto problem = test::make_tiny_problem({});
  const QhatMatrix qhat(problem, 50.0);
  const double dense_entries = static_cast<double>(problem.flat_size()) *
                               static_cast<double>(problem.flat_size());
  EXPECT_LE(static_cast<double>(qhat.nominal_nonzeros()), dense_entries);
}

}  // namespace
}  // namespace qbp
