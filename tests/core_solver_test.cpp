#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/burkard.hpp"
#include "core/embedding.hpp"
#include "core/initial.hpp"
#include "core/qhat.hpp"
#include "core/repair.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

// -------------------------------------------------------- brute force ----

TEST(BruteForce, EnumeratesAllAssignments) {
  std::int64_t count = 0;
  enumerate_assignments(4, 3, [&](const Assignment& assignment) {
    EXPECT_TRUE(assignment.is_complete());
    ++count;
  });
  EXPECT_EQ(count, 81);  // 3^4
}

TEST(BruteForce, ConstrainedOptimumOfPaperExample) {
  const auto problem = test::make_paper_example(/*capacity=*/1.0);
  const auto result = brute_force_constrained(problem);
  ASSERT_TRUE(result.found);
  // One component per partition, a-b adjacent, b-c adjacent:
  // cost = 2*(5*1 + 2*1) = 14.
  EXPECT_DOUBLE_EQ(result.value, 14.0);
  EXPECT_TRUE(problem.is_feasible(result.best));
}

TEST(BruteForce, UnconstrainedCapacityExampleIsZero) {
  // With capacity 3 everything can co-locate: zero wirelength is optimal
  // and timing-trivial.
  const auto problem = test::make_paper_example(/*capacity=*/3.0);
  const auto result = brute_force_constrained(problem);
  ASSERT_TRUE(result.found);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(BruteForce, ReportsInfeasibleInstance) {
  // Two size-2 components, two size-1 partitions.
  Netlist netlist;
  netlist.add_component("a", 2.0);
  netlist.add_component("b", 2.0);
  auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan, 1.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(2));
  const auto result = brute_force_constrained(problem);
  EXPECT_FALSE(result.found);
  EXPECT_EQ(result.feasible_count, 0);
}

// --------------------------------------- embedding theorems (exactness) ----

class EmbeddingTheoremSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmbeddingTheoremSweep, Theorem1PenaltyGivesExactEquivalence) {
  // QBP(Q') with U above the Theorem 1 threshold has the same optimum value
  // as the constrained problem, and its minimizer is feasible.
  auto spec = test::TinySpec{};
  spec.num_components = 5;
  spec.num_partitions = 3;
  spec.seed = GetParam();
  const auto problem = test::make_tiny_problem(spec);
  const auto constrained = brute_force_constrained(problem);
  if (!constrained.found) GTEST_SKIP() << "instance infeasible";

  const double u = theorem1_penalty(problem);
  const auto penalized = brute_force_penalized(problem, u);
  ASSERT_TRUE(penalized.found);
  EXPECT_NEAR(penalized.value, constrained.value, 1e-6);
  EXPECT_TRUE(problem.satisfies_timing(penalized.best));
  EXPECT_NEAR(problem.objective(penalized.best), constrained.value, 1e-6);
}

TEST_P(EmbeddingTheoremSweep, Theorem2CertifiesFeasibleMinimizers) {
  // With the paper's small penalty (50), *if* the penalized minimizer is
  // timing-feasible then it is a minimizer of the constrained problem.
  auto spec = test::TinySpec{};
  spec.num_components = 5;
  spec.num_partitions = 3;
  spec.seed = GetParam();
  const auto problem = test::make_tiny_problem(spec);
  const auto constrained = brute_force_constrained(problem);
  if (!constrained.found) GTEST_SKIP() << "instance infeasible";

  const auto penalized = brute_force_penalized(problem, kPaperPenalty);
  ASSERT_TRUE(penalized.found);
  if (problem.satisfies_timing(penalized.best)) {
    EXPECT_NEAR(problem.objective(penalized.best), constrained.value, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmbeddingTheoremSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------------------ Burkard ----

class BurkardTinySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BurkardTinySweep, ReachesOptimumOnTinyInstances) {
  auto spec = test::TinySpec{};
  spec.num_components = 6;
  spec.num_partitions = 3;
  spec.seed = GetParam();
  const auto problem = test::make_tiny_problem(spec);
  const auto exact = brute_force_constrained(problem);
  if (!exact.found) GTEST_SKIP() << "instance infeasible";

  const auto initial =
      test::round_robin(problem.num_components(), problem.num_partitions());
  BurkardOptions options;
  options.iterations = 60;
  const auto result = solve_qbp(problem, initial, options);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_TRUE(problem.is_feasible(result.best_feasible));
  EXPECT_NEAR(result.best_feasible_objective,
              problem.objective(result.best_feasible), 1e-9);
  // The heuristic should find the optimum on these tiny instances.
  EXPECT_NEAR(result.best_feasible_objective, exact.value, 1e-6);
}

TEST_P(BurkardTinySweep, LiteralListingStaysSound) {
  // polish_sweeps = 0, restart_period = 0: the paper's literal STEP 1-8.
  // It must remain sound (feasible output when it reports one, incumbent
  // values consistent), though it may be further from the optimum.
  auto spec = test::TinySpec{};
  spec.seed = GetParam();
  const auto problem = test::make_tiny_problem(spec);
  const auto initial =
      test::round_robin(problem.num_components(), problem.num_partitions());
  BurkardOptions options;
  options.iterations = 40;
  options.polish_sweeps = 0;
  options.restart_period = 0;
  const auto result = solve_qbp(problem, initial, options);
  const QhatMatrix qhat(problem, options.penalty);
  EXPECT_NEAR(result.best_penalized, qhat.penalized_value(result.best), 1e-9);
  if (result.found_feasible) {
    EXPECT_TRUE(problem.is_feasible(result.best_feasible));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BurkardTinySweep,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Burkard, IncumbentNeverWorsens) {
  const auto problem = test::make_tiny_problem({.seed = 3});
  const auto initial =
      test::round_robin(problem.num_components(), problem.num_partitions());
  BurkardOptions options;
  options.iterations = 30;
  const auto result = solve_qbp(problem, initial, options);
  ASSERT_FALSE(result.history.empty());
  for (std::size_t k = 1; k < result.history.size(); ++k) {
    EXPECT_LE(result.history[k], result.history[k - 1] + 1e-12);
  }
  EXPECT_EQ(result.iterations_run, 30);
  EXPECT_EQ(result.history.size(), 30u);
}

TEST(Burkard, DeterministicAcrossRuns) {
  const auto problem = test::make_tiny_problem({.seed = 4});
  const auto initial =
      test::round_robin(problem.num_components(), problem.num_partitions());
  BurkardOptions options;
  options.iterations = 25;
  const auto a = solve_qbp(problem, initial, options);
  const auto b = solve_qbp(problem, initial, options);
  EXPECT_EQ(a.best.raw().size(), b.best.raw().size());
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_penalized, b.best_penalized);
}

TEST(Burkard, SolvesPaperExampleToOptimum) {
  const auto problem = test::make_paper_example(/*capacity=*/1.0);
  Assignment start(3, 4);
  for (std::int32_t j = 0; j < 3; ++j) start.set(j, j);  // arbitrary
  BurkardOptions options;
  options.iterations = 30;
  const auto result = solve_qbp(problem, start, options);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_DOUBLE_EQ(result.best_feasible_objective, 14.0);
}

TEST(Burkard, PureLinearTermSpecialCase) {
  // PP(1, 0): objective is the linear term only (the MCM deviation
  // problem); the solver must still do real work through the diagonal.
  auto spec = test::TinySpec{};
  spec.with_linear_term = true;
  spec.seed = 7;
  const auto base = test::make_tiny_problem(spec);
  const PartitionProblem problem(base.netlist(), base.topology(), base.timing(),
                                 base.linear_cost_matrix(), 1.0, 0.0);
  const auto exact = brute_force_constrained(problem);
  if (!exact.found) GTEST_SKIP();
  const auto initial =
      test::round_robin(problem.num_components(), problem.num_partitions());
  BurkardOptions options;
  options.iterations = 60;
  const auto result = solve_qbp(problem, initial, options);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_NEAR(result.best_feasible_objective, exact.value, 1e-6);
}

TEST(Burkard, RespectsIterationBudget) {
  const auto problem = test::make_tiny_problem({.seed = 5});
  const auto initial =
      test::round_robin(problem.num_components(), problem.num_partitions());
  BurkardOptions options;
  options.iterations = 7;
  const auto result = solve_qbp(problem, initial, options);
  EXPECT_EQ(result.iterations_run, 7);
}

// ------------------------------------------------------------- initial ----

class InitialSweep
    : public ::testing::TestWithParam<std::tuple<InitialStrategy, std::uint64_t>> {
};

TEST_P(InitialSweep, ProducesCompleteAssignments) {
  const auto [strategy, seed] = GetParam();
  const auto problem = test::make_tiny_problem({.seed = seed});
  const auto result = make_initial(problem, strategy, seed);
  EXPECT_TRUE(result.assignment.is_complete());
  EXPECT_EQ(result.feasible, problem.is_feasible(result.assignment));
}

TEST_P(InitialSweep, DeterministicInSeed) {
  const auto [strategy, seed] = GetParam();
  const auto problem = test::make_tiny_problem({.seed = seed});
  const auto a = make_initial(problem, strategy, seed);
  const auto b = make_initial(problem, strategy, seed);
  EXPECT_EQ(a.assignment, b.assignment);
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndSeeds, InitialSweep,
    ::testing::Combine(::testing::Values(InitialStrategy::kRandom,
                                         InitialStrategy::kRandomFeasible,
                                         InitialStrategy::kGreedyBalanced,
                                         InitialStrategy::kQbpZeroWireCost),
                       ::testing::Values(1u, 2u, 3u)));

TEST(Initial, QbpZeroWireCostFindsFeasibleStartOnGenerousInstance) {
  auto spec = test::TinySpec{};
  spec.capacity_factor = 2.0;
  spec.constraint_probability = 0.2;
  spec.seed = 11;
  const auto problem = test::make_tiny_problem(spec);
  if (!brute_force_constrained(problem).found) GTEST_SKIP();
  const auto result =
      make_initial(problem, InitialStrategy::kQbpZeroWireCost, 11);
  EXPECT_TRUE(result.feasible);
}

// -------------------------------------------------------------- repair ----

TEST(Repair, FixesViolationsWhilePreservingCapacity) {
  auto spec = test::TinySpec{};
  spec.capacity_factor = 2.0;
  spec.seed = 13;
  const auto problem = test::make_tiny_problem(spec);
  if (!brute_force_constrained(problem).found) GTEST_SKIP();

  // Start from a capacity-feasible but timing-unaware assignment.
  const auto start =
      make_initial(problem, InitialStrategy::kGreedyBalanced, 13).assignment;
  if (!problem.satisfies_capacity(start)) GTEST_SKIP();

  const auto result = repair_timing(problem, start);
  EXPECT_TRUE(problem.satisfies_capacity(result.assignment));
  if (result.feasible) {
    EXPECT_TRUE(problem.satisfies_timing(result.assignment));
  }
  EXPECT_LE(problem.timing().violations(result.assignment, problem.topology()),
            problem.timing().violations(start, problem.topology()));
}

TEST(Repair, NoOpOnAlreadyFeasibleAssignment) {
  const auto problem = test::make_paper_example(/*capacity=*/1.0);
  Assignment feasible(3, 4);
  feasible.set(0, 0);
  feasible.set(1, 1);
  feasible.set(2, 3);
  ASSERT_TRUE(problem.is_feasible(feasible));
  const auto result = repair_timing(problem, feasible);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.moves, 0);
  EXPECT_EQ(result.assignment, feasible);
}

TEST(Repair, RespectsMoveBudget) {
  const auto problem = test::make_tiny_problem({.seed = 17});
  Assignment start =
      test::round_robin(problem.num_components(), problem.num_partitions());
  if (!problem.satisfies_capacity(start)) GTEST_SKIP();
  RepairOptions options;
  options.max_moves = 3;
  const auto result = repair_timing(problem, start, options);
  EXPECT_LE(result.moves, 3);
}

}  // namespace
}  // namespace qbp
