// DeltaEvaluator: the unified incremental evaluation layer.  Every delta it
// reports -- exact or cached -- must equal the brute difference of the full
// evaluation (penalized_value / objective), and the cache must stay exact
// across arbitrary commit sequences.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/delta_evaluator.hpp"
#include "core/qhat.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

constexpr double kPenalty = 50.0;

TEST(DeltaEvaluator, MoveDeltaMatchesPenalizedValueDifference) {
  const PartitionProblem problem = test::make_tiny_problem({.seed = 7});
  const QhatMatrix qhat(problem, kPenalty);
  DeltaEvaluator evaluator(problem, kPenalty);
  Rng rng(3);

  for (std::int32_t trial = 0; trial < 40; ++trial) {
    const Assignment assignment = test::random_complete(
        problem.num_components(), problem.num_partitions(), rng);
    const auto j = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(problem.num_components())));
    const auto target = static_cast<PartitionId>(
        rng.next_below(static_cast<std::uint64_t>(problem.num_partitions())));

    const double before = qhat.penalized_value(assignment);
    Assignment moved = assignment;
    moved.set(j, target);
    const double exact = qhat.penalized_value(moved) - before;

    EXPECT_NEAR(evaluator.move_delta(assignment, j, target), exact, 1e-9);
    // The QhatMatrix methods delegate to the same implementation.
    EXPECT_DOUBLE_EQ(evaluator.move_delta(assignment, j, target),
                     qhat.move_delta_penalized(assignment, j, target));

    evaluator.invalidate();
    const auto deltas = evaluator.move_deltas(assignment, j);
    EXPECT_NEAR(deltas[static_cast<std::size_t>(target)], exact, 1e-9);
    EXPECT_DOUBLE_EQ(deltas[static_cast<std::size_t>(assignment[j])], 0.0);
  }
}

TEST(DeltaEvaluator, SwapDeltaMatchesPenalizedValueDifference) {
  const PartitionProblem problem =
      test::make_tiny_problem({.with_linear_term = true, .seed = 11});
  const QhatMatrix qhat(problem, kPenalty);
  const DeltaEvaluator evaluator(problem, kPenalty);
  Rng rng(5);

  for (std::int32_t trial = 0; trial < 40; ++trial) {
    const Assignment assignment = test::random_complete(
        problem.num_components(), problem.num_partitions(), rng);
    const auto a = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(problem.num_components())));
    const auto b = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(problem.num_components())));

    const double before = qhat.penalized_value(assignment);
    Assignment swapped = assignment;
    swapped.set(a, assignment[b]);
    swapped.set(b, assignment[a]);
    const double exact = qhat.penalized_value(swapped) - before;

    EXPECT_NEAR(evaluator.swap_delta(assignment, a, b), exact, 1e-9);
    EXPECT_DOUBLE_EQ(evaluator.swap_delta(assignment, a, b),
                     qhat.swap_delta_penalized(assignment, a, b));
  }
}

TEST(DeltaEvaluator, ObjectiveModeMatchesObjectiveDifference) {
  const PartitionProblem problem =
      test::make_tiny_problem({.with_linear_term = true, .seed = 13});
  DeltaEvaluator evaluator(problem, 0.0);
  Rng rng(9);

  for (std::int32_t trial = 0; trial < 40; ++trial) {
    const Assignment assignment = test::random_complete(
        problem.num_components(), problem.num_partitions(), rng);
    const auto j = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(problem.num_components())));
    const auto target = static_cast<PartitionId>(
        rng.next_below(static_cast<std::uint64_t>(problem.num_partitions())));
    Assignment moved = assignment;
    moved.set(j, target);
    const double exact = problem.objective(moved) - problem.objective(assignment);
    EXPECT_NEAR(evaluator.move_delta(assignment, j, target), exact, 1e-9);

    evaluator.invalidate();
    const auto deltas = evaluator.move_deltas(assignment, j);
    EXPECT_NEAR(deltas[static_cast<std::size_t>(target)], exact, 1e-9);
  }
}

TEST(DeltaEvaluator, CacheStaysExactAcrossCommits) {
  const PartitionProblem problem = test::make_tiny_problem(
      {.num_components = 10, .wire_probability = 0.4, .seed = 17});
  const QhatMatrix qhat(problem, kPenalty);
  DeltaEvaluator evaluator(problem, kPenalty);
  Rng rng(21);

  Assignment assignment = test::random_complete(
      problem.num_components(), problem.num_partitions(), rng);

  for (std::int32_t step = 0; step < 120; ++step) {
    const auto j = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint64_t>(problem.num_components())));

    // Every cached row entry must equal the brute difference.
    const auto deltas = evaluator.move_deltas(assignment, j);
    const double before = qhat.penalized_value(assignment);
    for (PartitionId i = 0; i < problem.num_partitions(); ++i) {
      Assignment moved = assignment;
      moved.set(j, i);
      ASSERT_NEAR(deltas[static_cast<std::size_t>(i)],
                  qhat.penalized_value(moved) - before, 1e-9)
          << "step " << step << " component " << j << " target " << i;
    }

    // Mutate through the evaluator: alternate moves and swaps.
    if (step % 3 == 2) {
      const auto b = static_cast<std::int32_t>(
          rng.next_below(static_cast<std::uint64_t>(problem.num_components())));
      evaluator.commit_swap(assignment, j, b);
    } else {
      const auto target = static_cast<PartitionId>(
          rng.next_below(static_cast<std::uint64_t>(problem.num_partitions())));
      evaluator.commit_move(assignment, j, target);
    }
  }

  // The sequence revisits components whose neighborhood did not change in
  // between, so the cache must actually get hits.
  EXPECT_GT(evaluator.cache_hits(), 0u);
  EXPECT_GT(evaluator.cache_misses(), 0u);
}

TEST(DeltaEvaluator, SameComponentRepeatedQueriesHitCache) {
  const PartitionProblem problem = test::make_tiny_problem({.seed = 23});
  DeltaEvaluator evaluator(problem, kPenalty);
  Rng rng(1);
  const Assignment assignment = test::random_complete(
      problem.num_components(), problem.num_partitions(), rng);

  (void)evaluator.move_deltas(assignment, 0);
  EXPECT_EQ(evaluator.cache_misses(), 1u);
  for (int k = 0; k < 5; ++k) (void)evaluator.move_deltas(assignment, 0);
  EXPECT_EQ(evaluator.cache_misses(), 1u);
  EXPECT_EQ(evaluator.cache_hits(), 5u);

  // A component's *own* move keeps its row hot (the row depends only on the
  // positions of its neighbors and timing partners).
  Assignment mutated = assignment;
  const PartitionId target = (assignment[0] + 1) % problem.num_partitions();
  evaluator.commit_move(mutated, 0, target);
  (void)evaluator.move_deltas(mutated, 0);
  EXPECT_EQ(evaluator.cache_hits(), 6u);
}

// prefetch_rows builds the same rows lazy evaluation would, just earlier
// and in parallel: every subsequent move_deltas must return the same
// values as a fresh lazily-filled evaluator, and hit the cache.
TEST(DeltaEvaluator, PrefetchMatchesLazyBuildAtEveryThreadCount) {
  const PartitionProblem problem =
      test::make_tiny_problem({.num_components = 200, .num_partitions = 6,
                               .with_linear_term = true, .seed = 31});
  Rng rng(9);
  const Assignment assignment = test::random_complete(
      problem.num_components(), problem.num_partitions(), rng);

  DeltaEvaluator lazy(problem, kPenalty);
  std::vector<std::vector<double>> expected;
  for (std::int32_t j = 0; j < problem.num_components(); ++j) {
    const auto deltas = lazy.move_deltas(assignment, j);
    expected.emplace_back(deltas.begin(), deltas.end());
  }

  for (const std::int32_t threads : {1, 2, 8}) {
    DeltaEvaluator prefetched(problem, kPenalty);
    prefetched.prefetch_rows(assignment, threads);
    const auto n = static_cast<std::uint64_t>(problem.num_components());
    EXPECT_EQ(prefetched.cache_misses(), n) << "threads " << threads;
    for (std::int32_t j = 0; j < problem.num_components(); ++j) {
      const auto deltas = prefetched.move_deltas(assignment, j);
      const std::vector<double> got(deltas.begin(), deltas.end());
      ASSERT_EQ(got, expected[static_cast<std::size_t>(j)])
          << "component " << j << " threads " << threads;
    }
    EXPECT_EQ(prefetched.cache_hits(), n);  // every read was a prefetch hit
  }
}

}  // namespace
}  // namespace qbp
