// Engine layer: Solver adapters, better_result ordering, and -- the load-
// bearing property -- Portfolio determinism: same master seed + same starts
// => bit-identical chosen assignment for thread counts 1, 2 and 8.  This
// test is also the one the ThreadSanitizer CI job runs.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stop_token>
#include <vector>

#include "bench_support/circuits.hpp"
#include "core/initial.hpp"
#include "core/qhat.hpp"
#include "engine/engine.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp::engine {
namespace {

BurkardOptions fast_qbp_options() {
  BurkardOptions options;
  options.iterations = 12;
  return options;
}

PartitionProblem engine_problem() {
  return test::make_tiny_problem(
      {.num_components = 12, .num_partitions = 4, .seed = 42});
}

TEST(MakeSolver, KnowsEveryRegisteredNameAndRejectsUnknown) {
  for (const char* name : {"qbp", "multilevel", "gfm", "gkl", "sa"}) {
    const auto solver = make_solver(name);
    ASSERT_NE(solver, nullptr) << name;
    EXPECT_EQ(solver->name(), name);
  }
  EXPECT_EQ(make_solver("simplex"), nullptr);
  EXPECT_EQ(make_solver(""), nullptr);
}

TEST(BetterResult, FeasibilityDominatesThenObjectiveThenPenalized) {
  SolverResult feasible_good;
  feasible_good.found_feasible = true;
  feasible_good.best_feasible_objective = 10.0;
  SolverResult feasible_bad = feasible_good;
  feasible_bad.best_feasible_objective = 20.0;
  SolverResult infeasible_low;
  infeasible_low.best_penalized = 1.0;
  SolverResult infeasible_high;
  infeasible_high.best_penalized = 5.0;

  EXPECT_TRUE(better_result(feasible_bad, infeasible_low));
  EXPECT_FALSE(better_result(infeasible_low, feasible_bad));
  EXPECT_TRUE(better_result(feasible_good, feasible_bad));
  EXPECT_TRUE(better_result(infeasible_low, infeasible_high));
  // Strictness: ties are not "better" (keeps first-wins scans stable).
  EXPECT_FALSE(better_result(feasible_good, feasible_good));
  EXPECT_FALSE(better_result(infeasible_low, infeasible_low));
}

TEST(Adapters, BurkardAdapterMatchesDirectSolve) {
  const PartitionProblem problem = engine_problem();
  Rng rng(5);
  StartPoint start{test::random_complete(problem.num_components(),
                                         problem.num_partitions(), rng),
                   /*seed=*/7};

  const BurkardSolver solver(fast_qbp_options());
  const SolverResult via_engine = solver.solve(problem, start);
  const BurkardResult direct =
      solve_qbp(problem, start.assignment, fast_qbp_options());

  EXPECT_EQ(via_engine.solver, "qbp");
  EXPECT_DOUBLE_EQ(via_engine.best_penalized, direct.best_penalized);
  EXPECT_EQ(via_engine.best, direct.best);
  EXPECT_EQ(via_engine.found_feasible, direct.found_feasible);
  if (direct.found_feasible) {
    EXPECT_DOUBLE_EQ(via_engine.best_feasible_objective,
                     direct.best_feasible_objective);
    EXPECT_EQ(via_engine.best_feasible,
              direct.best_feasible);
  }
  EXPECT_EQ(via_engine.history, direct.history);
  EXPECT_EQ(via_engine.iterations, direct.iterations_run);
  EXPECT_FALSE(via_engine.cancelled);
}

TEST(Adapters, EveryAdapterProducesConsistentNormalizedResult) {
  const PartitionProblem problem = engine_problem();
  const QhatMatrix qhat(problem, kPaperPenalty);
  Rng rng(11);
  const StartPoint start{test::random_complete(problem.num_components(),
                                               problem.num_partitions(), rng),
                         /*seed=*/3};

  for (const char* name : {"qbp", "multilevel", "gfm", "gkl", "sa"}) {
    SCOPED_TRACE(name);
    const auto solver = make_solver(name);
    const SolverResult result = solver->solve(problem, start);

    EXPECT_EQ(result.solver, name);
    ASSERT_TRUE(result.best.is_complete());
    EXPECT_NEAR(result.best_penalized, qhat.penalized_value(result.best), 1e-9);
    if (result.found_feasible) {
      ASSERT_TRUE(result.best_feasible.is_complete());
      EXPECT_TRUE(problem.is_feasible(result.best_feasible));
      EXPECT_NEAR(result.best_feasible_objective,
                  problem.objective(result.best_feasible), 1e-9);
    }
    EXPECT_GE(result.seconds, 0.0);
    EXPECT_FALSE(result.cancelled);
  }
}

TEST(Adapters, FeasibleRegionSolversLegalizeInfeasibleStarts) {
  // The paper example is feasible; hand GFM/GKL/SA a start that violates
  // the adjacency constraints and check they still return a feasible
  // incumbent (the adapter legalizes before walking).
  const PartitionProblem problem = test::make_paper_example();
  Assignment bad(problem.num_components(), problem.num_partitions());
  bad.set(0, 0);
  bad.set(1, 3);  // a-b are diagonal: distance 2 > bound 1
  bad.set(2, 0);
  ASSERT_FALSE(problem.is_feasible(bad));

  for (const char* name : {"gfm", "gkl", "sa"}) {
    SCOPED_TRACE(name);
    const SolverResult result =
        make_solver(name)->solve(problem, StartPoint{bad, /*seed=*/9});
    ASSERT_TRUE(result.found_feasible);
    EXPECT_TRUE(problem.is_feasible(result.best_feasible));
  }
}

TEST(Adapters, StopTokenAlreadyFiredReturnsQuicklyAndMarksCancelled) {
  const PartitionProblem problem = engine_problem();
  Rng rng(13);
  const StartPoint start{test::random_complete(problem.num_components(),
                                               problem.num_partitions(), rng),
                         /*seed=*/1};
  std::stop_source source;
  source.request_stop();

  BurkardOptions options = fast_qbp_options();
  options.iterations = 100000;  // would be slow if cancellation failed
  const BurkardSolver solver(options);
  const SolverResult result =
      solver.solve(problem, start, source.get_token());
  EXPECT_TRUE(result.cancelled);
  EXPECT_LE(result.iterations, 1);
  ASSERT_TRUE(result.best.is_complete());
}

TEST(MultistartTiming, ReportsTotalAndBestStartSeconds) {
  const PartitionProblem problem = engine_problem();
  const BurkardResult result =
      solve_qbp_multistart(problem, /*starts=*/4, /*seed=*/77,
                           fast_qbp_options());
  // `seconds` is the whole multistart wall clock; `seconds_best_start` only
  // the winning start's, so it can never exceed the total.
  EXPECT_GE(result.seconds, result.seconds_best_start);
  EXPECT_GT(result.seconds_best_start, 0.0);
}

// The satellite requirement: same master seed + same start count =>
// bit-identical chosen assignment regardless of thread count.  Run under
// ThreadSanitizer in CI (QBPART_SANITIZE=tsan) this is also the data-race
// check for the whole portfolio driver.
TEST(Portfolio, DeterministicAcrossThreadCounts) {
  const PartitionProblem problem = engine_problem();
  const BurkardSolver solver(fast_qbp_options());
  constexpr std::int32_t kStarts = 8;

  PortfolioOptions base;
  base.seed = 2026;

  std::vector<PortfolioResult> results;
  for (const std::int32_t threads : {1, 2, 8}) {
    PortfolioOptions options = base;
    options.threads = threads;
    results.push_back(Portfolio(options).run(problem, solver, kStarts));
  }

  const PortfolioResult& reference = results.front();
  ASSERT_GE(reference.best_start, 0);
  EXPECT_EQ(reference.starts_run, kStarts);
  for (std::size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE("thread count variant " + std::to_string(i));
    EXPECT_EQ(results[i].best_start, reference.best_start);
    EXPECT_EQ(results[i].best.best,
              reference.best.best);
    EXPECT_DOUBLE_EQ(results[i].best.best_penalized,
                     reference.best.best_penalized);
    EXPECT_EQ(results[i].best.found_feasible, reference.best.found_feasible);
    ASSERT_EQ(results[i].starts.size(), reference.starts.size());
    for (std::size_t s = 0; s < reference.starts.size(); ++s) {
      EXPECT_EQ(results[i].starts[s].best,
                reference.starts[s].best)
          << "start " << s;
    }
  }
}

TEST(Portfolio, WinnerIsFirstBestSlotInIndexOrder) {
  const PartitionProblem problem = engine_problem();
  const BurkardSolver solver(fast_qbp_options());
  PortfolioOptions options;
  options.seed = 4;
  options.threads = 2;
  const PortfolioResult result = Portfolio(options).run(problem, solver, 6);

  ASSERT_GE(result.best_start, 0);
  ASSERT_EQ(result.starts.size(), 6u);
  const auto winner = static_cast<std::size_t>(result.best_start);
  // No earlier slot beats the winner; no slot at all strictly beats it.
  for (std::size_t s = 0; s < result.starts.size(); ++s) {
    EXPECT_FALSE(better_result(result.starts[s], result.starts[winner]))
        << "start " << s;
  }
  EXPECT_EQ(result.starts[winner].best,
            result.best.best);
  EXPECT_DOUBLE_EQ(result.seconds_best_start, result.starts[winner].seconds);
  EXPECT_GE(result.seconds_total, result.seconds_best_start);
}

TEST(Portfolio, HeterogeneousMixRunsEachListedSolver) {
  const PartitionProblem problem = engine_problem();
  const BurkardSolver qbp(fast_qbp_options());
  const GfmSolver gfm;
  const SaSolver sa;
  const std::vector<const Solver*> mix = {&qbp, &gfm, &sa, &gfm};

  PortfolioOptions options;
  options.seed = 99;
  options.threads = 2;
  const PortfolioResult result = Portfolio(options).run(problem, mix);

  ASSERT_EQ(result.starts.size(), mix.size());
  EXPECT_EQ(result.starts[0].solver, "qbp");
  EXPECT_EQ(result.starts[1].solver, "gfm");
  EXPECT_EQ(result.starts[2].solver, "sa");
  EXPECT_EQ(result.starts[3].solver, "gfm");
  ASSERT_GE(result.best_start, 0);
  EXPECT_EQ(result.starts_run, static_cast<std::int32_t>(mix.size()));
}

TEST(Portfolio, EarlyCancelSkipsOrCancelsRemainingStarts) {
  const PartitionProblem problem = engine_problem();
  const BurkardSolver solver(fast_qbp_options());
  PortfolioOptions options;
  options.seed = 7;
  options.threads = 1;  // serial => everything after the trigger is skipped
  // Any feasible result triggers the threshold.
  options.cancel_objective = std::numeric_limits<double>::infinity();
  const PortfolioResult result = Portfolio(options).run(problem, solver, 5);

  ASSERT_GE(result.best_start, 0);
  EXPECT_TRUE(result.best.found_feasible);
  // The trigger can only fire once some start found a feasible result, so
  // at least one ran; with one worker the rest never start.
  EXPECT_GE(result.starts_run, 1);
  EXPECT_EQ(result.starts_run + result.starts_skipped, 5);
  if (result.starts_skipped > 0) {
    const auto& skipped = result.starts.back();
    EXPECT_TRUE(skipped.cancelled);
    // Skipped slots never ran: the default (empty) result, name aside.
    EXPECT_EQ(skipped.best.num_components(), 0);
  }
}

TEST(Portfolio, SameSeedTwiceIsBitIdenticalAndDifferentSeedUsuallyDiffers) {
  const PartitionProblem problem = engine_problem();
  const GfmSolver solver;
  PortfolioOptions options;
  options.seed = 31;
  options.threads = 4;
  const PortfolioResult first = Portfolio(options).run(problem, solver, 6);
  const PortfolioResult second = Portfolio(options).run(problem, solver, 6);
  ASSERT_GE(first.best_start, 0);
  EXPECT_EQ(first.best_start, second.best_start);
  EXPECT_EQ(first.best.best, second.best.best);

  PortfolioOptions other = options;
  other.seed = 32;
  const PortfolioResult third = Portfolio(other).run(problem, solver, 6);
  // Different master seed => different start points (assignments differ for
  // at least one start; outcomes may still coincide on tiny instances).
  bool any_start_differs = false;
  for (std::size_t s = 0; s < first.starts.size(); ++s) {
    if (first.starts[s].best != third.starts[s].best) {
      any_start_differs = true;
    }
  }
  EXPECT_TRUE(any_start_differs);
}

/// Echoes its StartPoint back as the result, making the portfolio's start
/// generation (and the warm-start injection point) directly observable.
class RecordingSolver final : public Solver {
 public:
  [[nodiscard]] std::string_view name() const override { return "recording"; }
  [[nodiscard]] SolverResult solve(const PartitionProblem&,
                                   const StartPoint& start,
                                   std::stop_token) const override {
    SolverResult result;
    result.solver = "recording";
    result.best = start.assignment;
    result.best_penalized = 0.0;
    return result;
  }
};

TEST(Portfolio, InjectedInitialSeedsStartZeroOnly) {
  const PartitionProblem problem = engine_problem();
  const RecordingSolver recorder;

  PortfolioOptions options;
  options.seed = 2026;
  options.threads = 1;
  options.validate = false;  // the echoed results are not real solves
  const PortfolioResult plain = Portfolio(options).run(problem, recorder, 3);
  ASSERT_EQ(plain.starts.size(), 3u);

  // Any complete assignment works as the injected warm start; make one that
  // cannot collide with a seed-derived random start by construction.
  Assignment warm(problem.num_components(), problem.num_partitions());
  for (std::int32_t j = 0; j < problem.num_components(); ++j) {
    warm.set(j, j % problem.num_partitions());
  }
  options.initial = warm;
  const PortfolioResult injected = Portfolio(options).run(problem, recorder, 3);
  ASSERT_EQ(injected.starts.size(), 3u);

  EXPECT_EQ(injected.starts[0].best, warm);          // start 0: the injection
  EXPECT_NE(plain.starts[0].best, warm);             // ...which is new
  for (std::size_t s = 1; s < 3; ++s) {              // starts 1+: untouched
    EXPECT_EQ(injected.starts[s].best, plain.starts[s].best) << "start " << s;
  }
}

TEST(Portfolio, InjectedInitialIsDeterministicAcrossThreadCounts) {
  const PartitionProblem problem = engine_problem();
  const BurkardSolver solver(fast_qbp_options());

  Assignment warm(problem.num_components(), problem.num_partitions());
  for (std::int32_t j = 0; j < problem.num_components(); ++j) {
    warm.set(j, (j + 1) % problem.num_partitions());
  }

  PortfolioOptions options;
  options.seed = 11;
  options.initial = warm;
  options.threads = 1;
  const PortfolioResult reference = Portfolio(options).run(problem, solver, 4);
  ASSERT_GE(reference.best_start, 0);
  for (const std::int32_t threads : {2, 8}) {
    options.threads = threads;
    const PortfolioResult result = Portfolio(options).run(problem, solver, 4);
    EXPECT_EQ(result.best_start, reference.best_start) << threads;
    EXPECT_EQ(result.best.best, reference.best.best) << threads;
    EXPECT_DOUBLE_EQ(result.best.best_penalized, reference.best.best_penalized)
        << threads;
  }
}

TEST(Portfolio, MismatchedOrIncompleteInitialIsIgnored) {
  const PartitionProblem problem = engine_problem();
  const RecordingSolver recorder;

  PortfolioOptions options;
  options.seed = 2026;
  options.threads = 1;
  options.validate = false;
  const PortfolioResult plain = Portfolio(options).run(problem, recorder, 1);

  // Wrong shape: a different component count must not be injected.
  options.initial = Assignment(problem.num_components() + 1,
                               problem.num_partitions());
  for (std::int32_t j = 0; j <= problem.num_components(); ++j) {
    options.initial->set(j, 0);
  }
  const PortfolioResult wrong_shape =
      Portfolio(options).run(problem, recorder, 1);
  EXPECT_EQ(wrong_shape.starts[0].best, plain.starts[0].best);

  // Incomplete: unassigned components disqualify the injection.
  options.initial = Assignment(problem.num_components(),
                               problem.num_partitions());
  const PortfolioResult incomplete =
      Portfolio(options).run(problem, recorder, 1);
  EXPECT_EQ(incomplete.starts[0].best, plain.starts[0].best);
}

// The PR-5 tentpole contract: intra-solve parallelism must be invisible in
// the results.  Sweep inner_threads over {1, 2, 8} on an instance large
// enough that every parallel phase (eta gather, GAP construct/repair/
// improve/swap scans, polish row prefetch) actually chunks, and require
// bit-identical assignments and objectives.  Under TSan this doubles as
// the race check for the shared pool.
TEST(InnerThreads, BitIdenticalAcrossInnerThreadCounts) {
  const PartitionProblem problem = make_scaling_problem(800, 7);
  const Assignment initial =
      make_initial(problem, InitialStrategy::kQbpZeroWireCost, 7).assignment;

  std::vector<BurkardResult> results;
  for (const std::int32_t inner : {1, 2, 8}) {
    BurkardOptions options;
    options.iterations = 8;
    options.inner_threads = inner;
    results.push_back(solve_qbp(problem, initial, options));
  }
  const BurkardResult& reference = results.front();
  for (std::size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE("inner_threads variant " + std::to_string(i));
    EXPECT_EQ(results[i].best, reference.best);
    EXPECT_EQ(results[i].best_penalized, reference.best_penalized);
    EXPECT_EQ(results[i].found_feasible, reference.found_feasible);
    EXPECT_EQ(results[i].best_feasible, reference.best_feasible);
    EXPECT_EQ(results[i].best_feasible_objective,
              reference.best_feasible_objective);
    EXPECT_EQ(results[i].history, reference.history);
  }
}

// Starts x inner threads through the portfolio: the fair-share pool must
// not perturb either the per-start outcomes or the winner selection.
TEST(InnerThreads, PortfolioSweepIsBitIdentical) {
  const PartitionProblem problem = engine_problem();
  constexpr std::int32_t kStarts = 4;

  std::vector<PortfolioResult> results;
  for (const std::int32_t inner : {1, 2, 8}) {
    BurkardOptions solver_options = fast_qbp_options();
    solver_options.inner_threads = inner;
    const BurkardSolver solver(solver_options);
    PortfolioOptions options;
    options.seed = 2026;
    options.threads = 2;
    results.push_back(Portfolio(options).run(problem, solver, kStarts));
  }
  const PortfolioResult& reference = results.front();
  ASSERT_GE(reference.best_start, 0);
  for (std::size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE("inner_threads variant " + std::to_string(i));
    EXPECT_EQ(results[i].best_start, reference.best_start);
    EXPECT_EQ(results[i].best.best, reference.best.best);
    EXPECT_EQ(results[i].best.best_penalized, reference.best.best_penalized);
    ASSERT_EQ(results[i].starts.size(), reference.starts.size());
    for (std::size_t s = 0; s < reference.starts.size(); ++s) {
      EXPECT_EQ(results[i].starts[s].best, reference.starts[s].best)
          << "start " << s;
    }
  }
}

}  // namespace
}  // namespace qbp::engine
