#include <gtest/gtest.h>

#include "core/brute_force.hpp"
#include "core/burkard.hpp"
#include "core/exact.hpp"
#include "core/initial.hpp"
#include "test_support.hpp"

namespace qbp {
namespace {

class ExactVsBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsBruteForce, SameOptimumOnTinyInstances) {
  auto spec = test::TinySpec{};
  spec.num_components = 7;
  spec.num_partitions = 3;
  spec.with_linear_term = true;
  spec.seed = GetParam();
  const auto problem = test::make_tiny_problem(spec);
  const auto oracle = brute_force_constrained(problem);
  const auto exact = solve_exact(problem);

  EXPECT_EQ(exact.found, oracle.found);
  EXPECT_TRUE(exact.proven_optimal);
  if (oracle.found) {
    EXPECT_NEAR(exact.objective, oracle.value, 1e-9);
    EXPECT_TRUE(problem.is_feasible(exact.best));
    EXPECT_NEAR(problem.objective(exact.best), exact.objective, 1e-9);
  }
}

TEST_P(ExactVsBruteForce, PrunesAgainstFullEnumeration) {
  auto spec = test::TinySpec{};
  spec.num_components = 8;
  spec.num_partitions = 3;
  spec.seed = GetParam();
  const auto problem = test::make_tiny_problem(spec);
  const auto exact = solve_exact(problem);
  if (!exact.found) GTEST_SKIP();
  // 3^8 = 6561 leaves; the tree must be decisively smaller than the full
  // M^N * depth node count.
  EXPECT_LT(exact.nodes, 6561 * 8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBruteForce,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(Exact, SolvesPaperExample) {
  const auto problem = test::make_paper_example(/*capacity=*/1.0);
  const auto exact = solve_exact(problem);
  ASSERT_TRUE(exact.found);
  EXPECT_TRUE(exact.proven_optimal);
  EXPECT_DOUBLE_EQ(exact.objective, 14.0);
}

TEST(Exact, DetectsInfeasibleInstance) {
  Netlist netlist;
  netlist.add_component("a", 2.0);
  netlist.add_component("b", 2.0);
  auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan, 3.0);
  TimingConstraints timing(2);
  // Feasible by capacity only when split, but a delay-0 bound would demand
  // co-location -- bounds are floored at >= 0; use a 0 bound directly.
  timing.add(0, 1, 0.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 std::move(timing));
  const auto exact = solve_exact(problem);
  EXPECT_FALSE(exact.found);
  EXPECT_TRUE(exact.proven_optimal);
}

TEST(Exact, WarmStartTightensSearch) {
  auto spec = test::TinySpec{};
  spec.num_components = 9;
  spec.num_partitions = 3;
  spec.seed = 4;
  const auto problem = test::make_tiny_problem(spec);
  const auto cold = solve_exact(problem);
  if (!cold.found) GTEST_SKIP();

  BurkardOptions heuristic_options;
  heuristic_options.iterations = 30;
  const auto initial =
      test::round_robin(problem.num_components(), problem.num_partitions());
  const auto heuristic = solve_qbp(problem, initial, heuristic_options);
  if (!heuristic.found_feasible) GTEST_SKIP();

  ExactOptions options;
  options.warm_start = &heuristic.best_feasible;
  const auto warm = solve_exact(problem, options);
  ASSERT_TRUE(warm.found);
  EXPECT_NEAR(warm.objective, cold.objective, 1e-9);
  EXPECT_LE(warm.nodes, cold.nodes);
}

TEST(Exact, NodeBudgetReportedHonestly) {
  auto spec = test::TinySpec{};
  spec.num_components = 12;
  spec.num_partitions = 4;
  spec.seed = 5;
  const auto problem = test::make_tiny_problem(spec);
  ExactOptions options;
  options.max_nodes = 20;
  const auto result = solve_exact(problem, options);
  EXPECT_FALSE(result.proven_optimal);
}

TEST(Exact, MediumInstanceBeyondBruteForce) {
  // 18 components x 4 partitions = 4^18 ~ 7e10 raw assignments: far beyond
  // enumeration, fine for branch and bound.
  auto spec = test::TinySpec{};
  spec.num_components = 18;
  spec.num_partitions = 4;
  spec.wire_probability = 0.25;
  spec.constraint_probability = 0.15;
  spec.seed = 6;
  const auto problem = test::make_tiny_problem(spec);

  BurkardOptions heuristic_options;
  heuristic_options.iterations = 40;
  const auto initial =
      test::round_robin(problem.num_components(), problem.num_partitions());
  const auto heuristic = solve_qbp(problem, initial, heuristic_options);

  ExactOptions options;
  if (heuristic.found_feasible) options.warm_start = &heuristic.best_feasible;
  const auto exact = solve_exact(problem, options);
  ASSERT_TRUE(exact.proven_optimal);
  if (exact.found && heuristic.found_feasible) {
    // The heuristic can match but never beat the proven optimum.
    EXPECT_GE(heuristic.best_feasible_objective, exact.objective - 1e-9);
  }
}

}  // namespace
}  // namespace qbp
