#include <gtest/gtest.h>

#include "baselines/gfm.hpp"
#include "baselines/gkl.hpp"
#include "bench_support/circuits.hpp"
#include "bench_support/experiment.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "netlist/stats.hpp"

namespace qbp {
namespace {

// ---------------------------------------------------- circuit presets ----

TEST(Presets, SevenCircuitsInPaperOrder) {
  const auto& presets = shihkuh_presets();
  ASSERT_EQ(presets.size(), 7u);
  EXPECT_EQ(presets[0].name, "ckta");
  EXPECT_EQ(presets[6].name, "cktg");
  EXPECT_NE(find_preset("cktc"), nullptr);
  EXPECT_EQ(find_preset("cktx"), nullptr);
}

class PresetSweep : public ::testing::TestWithParam<int> {};

TEST_P(PresetSweep, MatchesTableOneStatistics) {
  const auto& preset = shihkuh_presets()[static_cast<std::size_t>(GetParam())];
  const auto instance = make_circuit(preset);
  const auto& problem = instance.problem;
  // Table I columns, hit exactly.
  EXPECT_EQ(problem.num_components(), preset.num_components);
  EXPECT_EQ(problem.netlist().total_wires(), preset.num_wires);
  EXPECT_EQ(problem.timing().count(), preset.num_timing_constraints);
  // "The number of partitions is 16."
  EXPECT_EQ(problem.num_partitions(), 16);
}

TEST_P(PresetSweep, HiddenPlacementIsFeasible) {
  const auto& preset = shihkuh_presets()[static_cast<std::size_t>(GetParam())];
  const auto instance = make_circuit(preset);
  // F_R is nonempty by construction (Theorem 1's precondition).
  EXPECT_TRUE(instance.problem.is_feasible(instance.hidden_placement));
}

TEST_P(PresetSweep, SizesSpanAboutTwoOrdersOfMagnitude) {
  const auto& preset = shihkuh_presets()[static_cast<std::size_t>(GetParam())];
  const auto instance = make_circuit(preset);
  const auto stats = compute_stats(instance.problem.netlist());
  EXPECT_GE(stats.size_ratio, 15.0);
  EXPECT_LE(stats.size_ratio, 150.0);
}

TEST_P(PresetSweep, ValidatesCleanly) {
  const auto& preset = shihkuh_presets()[static_cast<std::size_t>(GetParam())];
  const auto instance = make_circuit(preset);
  EXPECT_EQ(instance.problem.validate(), "");
}

INSTANTIATE_TEST_SUITE_P(AllSeven, PresetSweep, ::testing::Range(0, 7));

TEST(Presets, DeterministicConstruction) {
  const auto a = make_circuit(shihkuh_presets()[1]);
  const auto b = make_circuit(shihkuh_presets()[1]);
  EXPECT_EQ(a.hidden_placement, b.hidden_placement);
  EXPECT_EQ(a.problem.netlist().bundles(), b.problem.netlist().bundles());
  EXPECT_EQ(a.problem.timing().matrix(), b.problem.timing().matrix());
}

// ----------------------------------------- end-to-end (small circuit) ----

struct SmallCircuit {
  CircuitPreset preset{"mini", 90, 420, 180, 0x1234u};
};

TEST(EndToEnd, ThreeMethodsOnSmallCircuitWithTiming) {
  const SmallCircuit small;
  const auto instance = make_circuit(small.preset);
  const auto& problem = instance.problem;

  const auto initial =
      make_initial(problem, InitialStrategy::kQbpZeroWireCost, 7);
  ASSERT_TRUE(initial.feasible);
  const double start = problem.wirelength(initial.assignment);

  BurkardOptions qbp_options;
  qbp_options.iterations = 40;
  const auto qbp = solve_qbp(problem, initial.assignment, qbp_options);
  ASSERT_TRUE(qbp.found_feasible);
  EXPECT_TRUE(problem.is_feasible(qbp.best_feasible));
  EXPECT_LT(problem.wirelength(qbp.best_feasible), start);

  const auto gfm = solve_gfm(problem, initial.assignment);
  EXPECT_TRUE(problem.is_feasible(gfm.assignment));
  EXPECT_LE(problem.wirelength(gfm.assignment), start);

  GklOptions gkl_options;
  gkl_options.max_outer_loops = 3;
  const auto gkl = solve_gkl(problem, initial.assignment, gkl_options);
  EXPECT_TRUE(problem.is_feasible(gkl.assignment));
  EXPECT_LE(problem.wirelength(gkl.assignment), start);
}

TEST(EndToEnd, QbpImprovesFromArbitraryStart) {
  // Section 5: "QBP can start from any random solution."
  const SmallCircuit small;
  const auto instance = make_circuit(small.preset);
  const auto& problem = instance.problem;
  const auto random_start =
      make_initial(problem, InitialStrategy::kRandom, 99).assignment;

  BurkardOptions options;
  options.iterations = 50;
  const auto result = solve_qbp(problem, random_start, options);
  EXPECT_TRUE(result.found_feasible);
}

TEST(EndToEnd, TimingTableIsHarderThanRelaxedTable) {
  // The II -> III pattern: with the same start, the reachable wirelength
  // under timing constraints is no better than without them.
  const SmallCircuit small;
  const auto instance = make_circuit(small.preset);
  const auto& problem = instance.problem;
  const auto initial =
      make_initial(problem, InitialStrategy::kQbpZeroWireCost, 3);
  ASSERT_TRUE(initial.feasible);

  BurkardOptions options;
  options.iterations = 40;
  const auto with_timing = solve_qbp(problem, initial.assignment, options);
  const auto relaxed =
      solve_qbp(problem.without_timing(), initial.assignment, options);
  ASSERT_TRUE(with_timing.found_feasible);
  ASSERT_TRUE(relaxed.found_feasible);
  EXPECT_LE(problem.wirelength(relaxed.best_feasible),
            problem.wirelength(with_timing.best_feasible) * 1.05);
}

// ------------------------------------------------------------ harness ----

TEST(Harness, RunExperimentProducesConsistentRow) {
  const SmallCircuit small;
  const auto instance = make_circuit(small.preset);
  ExperimentConfig config;
  config.qbp_iterations = 25;
  config.gkl_outer_loops = 2;
  const auto row = run_experiment("mini", instance.problem, config);

  EXPECT_EQ(row.circuit, "mini");
  EXPECT_GT(row.start_cost, 0.0);
  EXPECT_TRUE(row.qbp.feasible);
  EXPECT_TRUE(row.gfm.feasible);
  EXPECT_TRUE(row.gkl.feasible);
  // Improvement percentages consistent with final costs.
  EXPECT_NEAR(row.qbp.improvement_pct,
              (row.start_cost - row.qbp.final_cost) / row.start_cost * 100.0,
              1e-6);
  EXPECT_LE(row.qbp.final_cost, row.start_cost);
  EXPECT_LE(row.gfm.final_cost, row.start_cost);
  EXPECT_LE(row.gkl.final_cost, row.start_cost);
}

TEST(Harness, SharedStartVariantUsesGivenAssignment) {
  const SmallCircuit small;
  const auto instance = make_circuit(small.preset);
  const auto initial = make_initial(instance.problem,
                                    InitialStrategy::kQbpZeroWireCost, 7);
  ASSERT_TRUE(initial.feasible);
  ExperimentConfig config;
  config.qbp_iterations = 10;
  config.run_gkl = false;
  const auto row = run_experiment_from("mini", instance.problem,
                                       initial.assignment, initial.feasible,
                                       config);
  EXPECT_DOUBLE_EQ(row.start_cost,
                   instance.problem.wirelength(initial.assignment));
}

TEST(Harness, TableFormatting) {
  ExperimentRow row;
  row.circuit = "cktx";
  row.start_cost = 20756;
  row.qbp = {17457, 15.9, 86.8, true};
  row.gfm = {18894, 9.0, 12.2, true};
  row.gkl = {17526, 15.6, 544.3, true};
  const auto table = format_table("Table II", {row});
  EXPECT_NE(table.find("Table II"), std::string::npos);
  EXPECT_NE(table.find("cktx"), std::string::npos);
  EXPECT_NE(table.find("20,756"), std::string::npos);
  EXPECT_NE(table.find("17,457"), std::string::npos);
  EXPECT_NE(table.find("15.9"), std::string::npos);
}

TEST(Harness, CsvFormatting) {
  ExperimentRow row;
  row.circuit = "ckty";
  row.start_cost = 100;
  row.qbp = {80, 20.0, 1.5, true};
  const auto csv = rows_to_csv({row});
  EXPECT_NE(csv.find("circuit,start"), std::string::npos);
  EXPECT_NE(csv.find("ckty,100.0,80.0,20.00,1.500,1"), std::string::npos);
}

}  // namespace
}  // namespace qbp
