// Cross-method invariant grid: every solver, across a matrix of capacity
// tightness and constraint density, must (a) keep C1/C3 always, (b) keep C2
// when it claims feasibility, (c) never worsen a feasible start, and (d)
// report objectives that match independent re-evaluation.
#include <gtest/gtest.h>

#include <tuple>

#include "baselines/gfm.hpp"
#include "baselines/gkl.hpp"
#include "baselines/sa.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "core/qhat.hpp"
#include "test_support.hpp"

namespace qbp {
namespace {

using GridParam = std::tuple<double /*capacity_factor*/,
                             double /*constraint_probability*/,
                             std::uint64_t /*seed*/>;

class SolverGrid : public ::testing::TestWithParam<GridParam> {
 protected:
  void SetUp() override {
    const auto [capacity, density, seed] = GetParam();
    auto spec = test::TinySpec{};
    spec.num_components = 12;
    spec.num_partitions = 4;
    spec.wire_probability = 0.3;
    spec.constraint_probability = density;
    spec.capacity_factor = capacity;
    spec.seed = seed;
    problem_ = test::make_tiny_problem(spec);
    const auto initial = make_initial(
        problem_, InitialStrategy::kQbpZeroWireCost, seed);
    start_ = initial.assignment;
    start_feasible_ = initial.feasible;
  }

  PartitionProblem problem_;
  Assignment start_;
  bool start_feasible_ = false;
};

TEST_P(SolverGrid, QbpInvariants) {
  BurkardOptions options;
  options.iterations = 30;
  const auto result = solve_qbp(problem_, start_, options);
  // C3: complete assignments always.
  EXPECT_TRUE(result.best.is_complete());
  // The penalized incumbent matches re-evaluation.
  const QhatMatrix qhat(problem_, options.penalty);
  EXPECT_NEAR(result.best_penalized, qhat.penalized_value(result.best), 1e-9);
  if (result.found_feasible) {
    EXPECT_TRUE(problem_.is_feasible(result.best_feasible));
    EXPECT_NEAR(result.best_feasible_objective,
                problem_.objective(result.best_feasible), 1e-9);
    if (start_feasible_) {
      EXPECT_LE(result.best_feasible_objective,
                problem_.objective(start_) + 1e-9);
    }
  }
}

TEST_P(SolverGrid, GfmInvariants) {
  if (!start_feasible_) GTEST_SKIP() << "no feasible start";
  const auto result = solve_gfm(problem_, start_);
  EXPECT_TRUE(problem_.is_feasible(result.assignment));
  EXPECT_NEAR(result.objective, problem_.objective(result.assignment), 1e-9);
  EXPECT_LE(result.objective, problem_.objective(start_) + 1e-9);
}

TEST_P(SolverGrid, GklInvariants) {
  if (!start_feasible_) GTEST_SKIP();
  const auto result = solve_gkl(problem_, start_);
  EXPECT_TRUE(problem_.is_feasible(result.assignment));
  EXPECT_NEAR(result.objective, problem_.objective(result.assignment), 1e-9);
  EXPECT_LE(result.objective, problem_.objective(start_) + 1e-9);
}

TEST_P(SolverGrid, SaInvariants) {
  if (!start_feasible_) GTEST_SKIP();
  SaOptions options;
  options.moves_per_component = 4;  // keep the grid fast
  const auto result = solve_sa(problem_, start_, options);
  EXPECT_TRUE(problem_.is_feasible(result.assignment));
  EXPECT_NEAR(result.objective, problem_.objective(result.assignment), 1e-9);
  EXPECT_LE(result.objective, problem_.objective(start_) + 1e-9);
}

std::string grid_name(const ::testing::TestParamInfo<GridParam>& info) {
  const double capacity = std::get<0>(info.param);
  const double density = std::get<1>(info.param);
  const std::uint64_t seed = std::get<2>(info.param);
  return "cap" + std::to_string(static_cast<int>(capacity * 10)) + "_den" +
         std::to_string(static_cast<int>(density * 100)) + "_s" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    TightnessGrid, SolverGrid,
    ::testing::Combine(::testing::Values(1.2, 1.6, 2.5),       // capacity
                       ::testing::Values(0.05, 0.2, 0.4),      // constraints
                       ::testing::Values(11u, 12u)),           // seeds
    grid_name);

}  // namespace
}  // namespace qbp
