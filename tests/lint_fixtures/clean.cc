// Fixture: a file exercising the *allowed* neighbors of every rule; must
// produce zero findings.
#include <map>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

struct Table {
  std::unordered_map<std::string, int> index_;
  std::map<std::string, int> ordered_;
  std::vector<double> values_;

  // Comments mentioning assert( or std::thread must not fire, and neither
  // must strings: "assert(x)" below is data, not code.
  const char* describe() const { return "assert(x) std::rand()"; }

  int lookup(const std::string& key) const {
    const auto found = index_.find(key);
    return found == index_.end() ? 0 : found->second;
  }

  double sum() const {
    double total = std::accumulate(values_.begin(), values_.end(), 0.0);
    for (const auto& [key, value] : ordered_) total += value;
    return total;
  }

  std::span<const double> view() const { return values_; }
};

unsigned probe() { return std::thread::hardware_concurrency(); }
