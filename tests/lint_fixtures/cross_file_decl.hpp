// Fixture: the unordered member is declared here; cross_file_iter.cc
// iterates it.  Pass 1 collects names across every scanned file, so the
// .cc finding depends on this header being in the same lint run.
#pragma once

#include <string>
#include <unordered_map>

struct Directory {
  std::unordered_map<std::string, int> entries_;
  int total() const;
};
