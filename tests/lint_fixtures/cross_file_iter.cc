// Fixture: iterating a member whose unordered declaration lives in
// cross_file_decl.hpp -- the finding requires cross-file name collection.
#include "cross_file_decl.hpp"

int Directory::total() const {
  int sum = 0;
  for (const auto& [name, value] : entries_) {  // line 7: finding
    sum += value;
  }
  return sum;
}
