// Fixture: dangling-span fires when a std::span is bound to the temporary
// returned by a by-value accessor (the catalogue currently lists omega());
// spanning a reference-returning accessor or a named copy is fine.
#include <span>
#include <vector>

struct Matrix {
  std::vector<double> omega() const { return {1.0, 2.0}; }
  const std::vector<double>& sizes() const { return storage; }
  std::vector<double> storage;
};

double fixture(const Matrix& matrix) {
  std::span<const double> bad = matrix.omega();  // line 14: finding
  const std::span<const double> fine = matrix.sizes();
  const std::vector<double> copy = matrix.omega();
  const std::span<const double> also_fine = copy;
  return bad[0] + fine[0] + also_fine[0];
}
