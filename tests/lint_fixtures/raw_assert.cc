// Fixture: raw-assert must fire on assert(), not on static_assert or on
// member-access calls that happen to be named assert.  (Fixtures are lint
// input only -- they are never compiled.)
#include <cassert>

struct Checker;

void fixture(int value, Checker& checker) {
  assert(value > 0);  // finding: raw-assert @ line 9
  static_assert(sizeof(int) >= 4);
  checker.assert(value);  // member access: allowed
}
