// Fixture: raw-rng fires on C-library randomness and std::random_device;
// member calls named rand() on project types are fine.  (Fixtures are lint
// input only -- they are never compiled.)
#include <cstdlib>
#include <random>

struct Rng;

int fixture(Rng& rng) {
  std::srand(42);             // finding: raw-rng @ line 10
  const int a = std::rand();  // finding: raw-rng @ line 11
  std::random_device device;  // finding: raw-rng @ line 12
  return a + rng.rand() + static_cast<int>(device());
}
