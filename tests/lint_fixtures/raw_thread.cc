// Fixture: raw-thread fires on std::thread / std::jthread / std::async but
// not on static member access like std::thread::hardware_concurrency().
#include <future>
#include <thread>

void fixture() {
  std::thread worker([] {});  // line 7: finding
  worker.join();
  std::jthread scoped([] {});  // line 9: finding
  auto task = std::async([] { return 1; });  // line 10: finding
  (void)task.get();
  const unsigned cores = std::thread::hardware_concurrency();  // allowed
  (void)cores;
}
