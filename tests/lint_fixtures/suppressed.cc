// Fixture: suppression handling.  Same-line and preceding-comment-line
// allow() markers silence exactly the named rule; a marker naming a
// different rule changes nothing.
#include <cassert>
#include <thread>

void fixture(int value) {
  assert(value > 0);  // qbp-lint: allow(raw-assert): fixture rationale
  // qbp-lint: allow(raw-thread): joined before return
  std::thread worker([] {});
  worker.join();
  assert(value < 100);  // qbp-lint: allow(raw-thread)  <- wrong rule, line 12: finding
  // qbp-lint: allow(raw-assert)
  int gap = value;  // the allowance above covers this line, not the next
  assert(gap != 0);  // line 15: finding
}
