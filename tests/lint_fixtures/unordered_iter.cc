// Fixture: unordered-iter fires on range-for and .begin() over variables
// declared with an unordered container type; lookups are fine, and ordered
// containers never fire.
#include <map>
#include <string>
#include <unordered_map>

int fixture() {
  std::unordered_map<std::string, int> counts;
  std::map<std::string, int> sorted;
  int total = 0;
  for (const auto& [key, value] : counts) {  // finding: unordered-iter @ line 12
    total += value;
  }
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // finding @ line 15
    total += it->second;
  }
  for (const auto& [key, value] : sorted) {  // ordered: allowed
    total += value;
  }
  total += static_cast<int>(counts.count("x"));  // lookup: allowed
  return total;
}
