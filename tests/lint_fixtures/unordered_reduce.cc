// Fixture: unordered-reduce fires on std::reduce / std::transform_reduce;
// std::accumulate (strictly left-to-right) is fine.
#include <numeric>
#include <vector>

double fixture(const std::vector<double>& values) {
  const double a = std::reduce(values.begin(), values.end());  // line 7: finding
  const double b = std::transform_reduce(  // line 8: finding
      values.begin(), values.end(), 0.0, [](double x, double y) { return x + y; },
      [](double x) { return x * x; });
  const double c = std::accumulate(values.begin(), values.end(), 0.0);
  return a + b + c;
}
