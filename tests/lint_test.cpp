// Tests for tools/qbp_lint: every rule must fire on its fixture, the clean
// fixture must stay silent, suppressions must silence exactly the named
// rule, and the per-directory exemptions must hold.  Fixture sources live
// in tests/lint_fixtures/ (lint input only -- never compiled).
#include "lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

namespace {

using qbp::lint::Finding;
using qbp::lint::SourceFile;

std::string fixture_path(const std::string& name) {
  return std::string(QBP_LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Finding> lint_paths(const std::vector<std::string>& paths) {
  std::string error;
  std::vector<Finding> findings = qbp::lint::run(paths, error);
  EXPECT_TRUE(error.empty()) << error;
  return findings;
}

/// The (rule, line) pairs of a finding list, sorted.
std::vector<std::pair<std::string, int>> rule_lines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const Finding& finding : findings) {
    out.emplace_back(finding.rule, finding.line);
  }
  std::sort(out.begin(), out.end());
  return out;
}

using Expected = std::vector<std::pair<std::string, int>>;

TEST(LintRules, CatalogueListsEveryRule) {
  std::vector<std::string> names;
  for (const auto& rule : qbp::lint::rules()) names.push_back(rule.name);
  const std::vector<std::string> expected = {
      "raw-assert",   "raw-thread",       "raw-rng",
      "unordered-iter", "unordered-reduce", "dangling-span"};
  for (const std::string& name : expected) {
    EXPECT_NE(std::find(names.begin(), names.end(), name), names.end())
        << "rule missing from catalogue: " << name;
  }
  EXPECT_EQ(names.size(), expected.size());
}

TEST(LintRules, RawAssertFiresOnceAndIgnoresMemberAccess) {
  const auto findings = lint_paths({fixture_path("raw_assert.cc")});
  EXPECT_EQ(rule_lines(findings), (Expected{{"raw-assert", 9}}));
}

TEST(LintRules, RawThreadFiresButAllowsStaticMemberAccess) {
  const auto findings = lint_paths({fixture_path("raw_thread.cc")});
  EXPECT_EQ(rule_lines(findings),
            (Expected{{"raw-thread", 7}, {"raw-thread", 9}, {"raw-thread", 10}}));
}

TEST(LintRules, RawRngFiresOnLibraryRandomness) {
  const auto findings = lint_paths({fixture_path("raw_rng.cc")});
  EXPECT_EQ(rule_lines(findings),
            (Expected{{"raw-rng", 10}, {"raw-rng", 11}, {"raw-rng", 12}}));
}

TEST(LintRules, UnorderedIterFiresOnRangeForAndBegin) {
  const auto findings = lint_paths({fixture_path("unordered_iter.cc")});
  EXPECT_EQ(rule_lines(findings),
            (Expected{{"unordered-iter", 12}, {"unordered-iter", 15}}));
}

TEST(LintRules, UnorderedReduceFiresButAccumulateIsFine) {
  const auto findings = lint_paths({fixture_path("unordered_reduce.cc")});
  EXPECT_EQ(rule_lines(findings),
            (Expected{{"unordered-reduce", 7}, {"unordered-reduce", 8}}));
}

TEST(LintRules, DanglingSpanFiresOnByValueAccessorOnly) {
  const auto findings = lint_paths({fixture_path("dangling_span.cc")});
  EXPECT_EQ(rule_lines(findings), (Expected{{"dangling-span", 14}}));
}

TEST(LintRules, CleanFixtureProducesNoFindings) {
  const auto findings = lint_paths({fixture_path("clean.cc")});
  EXPECT_TRUE(findings.empty()) << findings.size() << " unexpected findings, "
                                << "first: " << findings[0].rule << " @ "
                                << findings[0].line;
}

TEST(LintSuppression, SilencesExactlyTheNamedRule) {
  // Line 8 (same-line allow) and line 10 (allow on the comment line above)
  // are silenced; line 12 carries an allow() for the *wrong* rule and line
  // 15 sits one line too far below its allow() -- both must still fire.
  const auto findings = lint_paths({fixture_path("suppressed.cc")});
  EXPECT_EQ(rule_lines(findings),
            (Expected{{"raw-assert", 12}, {"raw-assert", 15}}));
}

TEST(LintCrossFile, HeaderDeclarationFlagsIterationInCpp) {
  const auto findings = lint_paths({fixture_path("cross_file_decl.hpp"),
                                    fixture_path("cross_file_iter.cc")});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "unordered-iter");
  EXPECT_EQ(findings[0].line, 7);
  EXPECT_NE(findings[0].file.find("cross_file_iter.cc"), std::string::npos);
  // Without the header in the run the declaration is invisible and the
  // iteration cannot be attributed to an unordered container.
  EXPECT_TRUE(lint_paths({fixture_path("cross_file_iter.cc")}).empty());
}

TEST(LintExemptions, SanctionedDirectoriesAreExempt) {
  const std::string thread_use =
      "#include <thread>\nvoid f() { std::thread t([]{}); t.join(); }\n";
  const std::string rng_use = "int f() { return std::rand(); }\n";
  EXPECT_TRUE(qbp::lint::lint_files(
                  {{"src/util/parallel/pool.cpp", thread_use}})
                  .empty());
  EXPECT_EQ(
      qbp::lint::lint_files({{"src/service/server.cpp", thread_use}}).size(),
      1u);
  EXPECT_TRUE(qbp::lint::lint_files({{"src/util/rng.cpp", rng_use}}).empty());
  EXPECT_EQ(qbp::lint::lint_files({{"src/core/solver.cpp", rng_use}}).size(),
            1u);
}

TEST(LintOutput, JsonRendersFindingsAndEmptyList) {
  EXPECT_EQ(qbp::lint::to_json({}), "[]\n");
  const std::string json = qbp::lint::to_json(
      {{"src/a.cpp", 12, "raw-assert", "use QBP_CHECK \"quoted\""}});
  EXPECT_NE(json.find("\"file\":\"src/a.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":12"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"raw-assert\""), std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos);
}

TEST(LintTokenizer, CommentsStringsAndIncludesNeverFire) {
  const std::string tricky =
      "// assert(1) in a comment\n"
      "/* std::thread in a block comment */\n"
      "#include <unordered_map>\n"
      "const char* s = \"assert(1) std::rand()\";\n"
      "const char* r = R\"(assert(2) std::random_device)\";\n";
  EXPECT_TRUE(qbp::lint::lint_files({{"src/x.cpp", tricky}}).empty());
}

TEST(LintTree, RepositorySourcesAreLintClean) {
  // The same gate ctest runs as `qbp_lint_src`, exercised in-process so a
  // failure here names the offending file and line in the gtest log.
  const auto findings = lint_paths({std::string(QBP_LINT_SRC_DIR)});
  for (const Finding& finding : findings) {
    ADD_FAILURE() << finding.file << ":" << finding.line << ": ["
                  << finding.rule << "] " << finding.message;
  }
}

}  // namespace
