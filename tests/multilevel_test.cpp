#include <gtest/gtest.h>

#include "bench_support/circuits.hpp"
#include "core/initial.hpp"
#include "core/multilevel.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

PartitionProblem medium_problem(std::uint64_t seed) {
  auto spec = test::TinySpec{};
  spec.num_components = 40;
  spec.num_partitions = 4;
  spec.wire_probability = 0.15;
  spec.constraint_probability = 0.05;
  spec.capacity_factor = 1.6;
  spec.seed = seed;
  return test::make_tiny_problem(spec);
}

// ------------------------------------------------------------ coarsen ----

class CoarsenSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoarsenSweep, ClusterMapIsValidAndShrinks) {
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  ASSERT_EQ(coarse.cluster_of.size(),
            static_cast<std::size_t>(problem.num_components()));
  for (const auto cluster : coarse.cluster_of) {
    EXPECT_GE(cluster, 0);
    EXPECT_LT(cluster, coarse.num_clusters);
  }
  EXPECT_LT(coarse.num_clusters, problem.num_components());
  // Matching merges at most pairs: at least ceil(N/2) clusters.
  EXPECT_GE(coarse.num_clusters, problem.num_components() / 2);
}

TEST_P(CoarsenSweep, PreservesTotalSize) {
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  EXPECT_NEAR(coarse.problem.netlist().total_size(),
              problem.netlist().total_size(), 1e-9);
}

TEST_P(CoarsenSweep, PreservesCrossClusterWires) {
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  // Every coarse wire count equals the sum of fine wires between the two
  // clusters; total coarse wires = fine wires minus intra-cluster wires.
  std::int64_t intra = 0;
  for (const WireBundle& bundle : problem.netlist().bundles()) {
    if (coarse.cluster_of[bundle.a] == coarse.cluster_of[bundle.b]) {
      intra += bundle.multiplicity;
    }
  }
  EXPECT_EQ(coarse.problem.netlist().total_wires(),
            problem.netlist().total_wires() - intra);
}

TEST_P(CoarsenSweep, ObjectiveMatchesOnClusterRespectingAssignments) {
  // For an assignment where every cluster is co-located, the coarse and
  // fine objectives agree exactly (intra-cluster wires cost zero).
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  Rng rng(GetParam() ^ 0x11);
  const auto coarse_assignment = test::random_complete(
      coarse.num_clusters, problem.num_partitions(), rng);
  const auto fine_assignment = uncoarsen(coarse, coarse_assignment);
  EXPECT_NEAR(coarse.problem.objective(coarse_assignment),
              problem.objective(fine_assignment), 1e-9);
}

TEST_P(CoarsenSweep, FeasibilityProjectsDownward) {
  // Coarse-feasible => fine-feasible under uncoarsening (tightest-bound
  // constraint transfer + zero intra-cluster delay + additive sizes).
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  Rng rng(GetParam() ^ 0x22);
  int checked = 0;
  for (int trial = 0; trial < 300 && checked < 5; ++trial) {
    const auto coarse_assignment = test::random_complete(
        coarse.num_clusters, problem.num_partitions(), rng);
    if (!coarse.problem.is_feasible(coarse_assignment)) continue;
    ++checked;
    EXPECT_TRUE(problem.is_feasible(uncoarsen(coarse, coarse_assignment)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoarsenSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Coarsen, RespectsSizeLimit) {
  const auto problem = medium_problem(3);
  CoarsenOptions options;
  options.max_cluster_capacity_fraction = 1e-9;  // nothing may merge
  const auto coarse = coarsen(problem, options);
  EXPECT_EQ(coarse.num_clusters, problem.num_components());
}

TEST(Coarsen, DeterministicInSeed) {
  const auto problem = medium_problem(4);
  const auto a = coarsen(problem);
  const auto b = coarsen(problem);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
}

// ---------------------------------------------------------- multilevel ----

class MultilevelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultilevelSweep, ProducesFeasibleSolutions) {
  const auto problem = medium_problem(GetParam());
  const auto initial =
      make_initial(problem, InitialStrategy::kGreedyBalanced, GetParam());
  MultilevelOptions options;
  options.coarse_solver.iterations = 40;
  options.refine_solver.iterations = 15;
  const auto result = solve_qbp_multilevel(problem, initial.assignment, options);
  EXPECT_GE(result.levels_used, 1);
  EXPECT_EQ(result.level_sizes.front(), problem.num_components());
  if (result.finest.found_feasible) {
    EXPECT_TRUE(problem.is_feasible(result.finest.best_feasible));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultilevelSweep,
                         ::testing::Values(1u, 2u, 3u));

TEST(Multilevel, WorksOnPresetCircuit) {
  const auto instance = make_circuit(*find_preset("cktb"));
  const auto initial = make_initial(instance.problem,
                                    InitialStrategy::kQbpZeroWireCost, 1993);
  MultilevelOptions options;
  options.coarse_solver.iterations = 40;
  options.refine_solver.iterations = 20;
  const auto result =
      solve_qbp_multilevel(instance.problem, initial.assignment, options);
  ASSERT_TRUE(result.finest.found_feasible);
  EXPECT_TRUE(instance.problem.is_feasible(result.finest.best_feasible));
  // Hierarchy really coarsened.
  ASSERT_GE(result.level_sizes.size(), 2u);
  EXPECT_LT(result.level_sizes[1], result.level_sizes[0]);
}

}  // namespace
}  // namespace qbp
