#include <gtest/gtest.h>

#include "bench_support/circuits.hpp"
#include "core/delta_evaluator.hpp"
#include "core/initial.hpp"
#include "core/multilevel.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

PartitionProblem medium_problem(std::uint64_t seed) {
  auto spec = test::TinySpec{};
  spec.num_components = 40;
  spec.num_partitions = 4;
  spec.wire_probability = 0.15;
  spec.constraint_probability = 0.05;
  spec.capacity_factor = 1.6;
  spec.seed = seed;
  return test::make_tiny_problem(spec);
}

// ------------------------------------------------------------ coarsen ----

class CoarsenSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoarsenSweep, ClusterMapIsValidAndShrinks) {
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  ASSERT_EQ(coarse.cluster_of.size(),
            static_cast<std::size_t>(problem.num_components()));
  for (const auto cluster : coarse.cluster_of) {
    EXPECT_GE(cluster, 0);
    EXPECT_LT(cluster, coarse.num_clusters);
  }
  EXPECT_LT(coarse.num_clusters, problem.num_components());
  // Matching merges at most pairs: at least ceil(N/2) clusters.
  EXPECT_GE(coarse.num_clusters, problem.num_components() / 2);
}

TEST_P(CoarsenSweep, PreservesTotalSize) {
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  EXPECT_NEAR(coarse.problem.netlist().total_size(),
              problem.netlist().total_size(), 1e-9);
}

TEST_P(CoarsenSweep, PreservesCrossClusterWires) {
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  // Every coarse wire count equals the sum of fine wires between the two
  // clusters; total coarse wires = fine wires minus intra-cluster wires.
  std::int64_t intra = 0;
  for (const WireBundle& bundle : problem.netlist().bundles()) {
    if (coarse.cluster_of[bundle.a] == coarse.cluster_of[bundle.b]) {
      intra += bundle.multiplicity;
    }
  }
  EXPECT_EQ(coarse.problem.netlist().total_wires(),
            problem.netlist().total_wires() - intra);
}

TEST_P(CoarsenSweep, ObjectiveMatchesOnClusterRespectingAssignments) {
  // For an assignment where every cluster is co-located, the coarse and
  // fine objectives agree exactly (intra-cluster wires cost zero).
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  Rng rng(GetParam() ^ 0x11);
  const auto coarse_assignment = test::random_complete(
      coarse.num_clusters, problem.num_partitions(), rng);
  const auto fine_assignment = uncoarsen(coarse, coarse_assignment);
  EXPECT_NEAR(coarse.problem.objective(coarse_assignment),
              problem.objective(fine_assignment), 1e-9);
}

TEST_P(CoarsenSweep, FeasibilityProjectsDownward) {
  // Coarse-feasible => fine-feasible under uncoarsening (tightest-bound
  // constraint transfer + zero intra-cluster delay + additive sizes).
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  Rng rng(GetParam() ^ 0x22);
  int checked = 0;
  for (int trial = 0; trial < 300 && checked < 5; ++trial) {
    const auto coarse_assignment = test::random_complete(
        coarse.num_clusters, problem.num_partitions(), rng);
    if (!coarse.problem.is_feasible(coarse_assignment)) continue;
    ++checked;
    EXPECT_TRUE(problem.is_feasible(uncoarsen(coarse, coarse_assignment)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoarsenSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Coarsen, RespectsSizeLimit) {
  const auto problem = medium_problem(3);
  CoarsenOptions options;
  options.max_cluster_capacity_fraction = 1e-9;  // nothing may merge
  const auto coarse = coarsen(problem, options);
  EXPECT_EQ(coarse.num_clusters, problem.num_components());
}

TEST(Coarsen, DeterministicInSeed) {
  const auto problem = medium_problem(4);
  const auto a = coarsen(problem);
  const auto b = coarsen(problem);
  EXPECT_EQ(a.cluster_of, b.cluster_of);
}

// ---------------------------------------------------------- multilevel ----

class MultilevelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultilevelSweep, ProducesFeasibleSolutions) {
  const auto problem = medium_problem(GetParam());
  const auto initial =
      make_initial(problem, InitialStrategy::kGreedyBalanced, GetParam());
  MultilevelOptions options;
  options.coarse_solver.iterations = 40;
  options.refine_solver.iterations = 15;
  // The 40-component instance sits below the default coarsest_target floor;
  // lower it so the sweep exercises a real V-cycle.
  options.coarsest_target = 10;
  const auto result = solve_qbp_multilevel(problem, initial.assignment, options);
  EXPECT_GE(result.levels_used, 1);
  EXPECT_EQ(result.level_sizes.front(), problem.num_components());
  if (result.finest.found_feasible) {
    EXPECT_TRUE(problem.is_feasible(result.finest.best_feasible));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultilevelSweep,
                         ::testing::Values(1u, 2u, 3u));

TEST(Multilevel, WorksOnPresetCircuit) {
  const auto instance = make_circuit(*find_preset("cktb"));
  const auto initial = make_initial(instance.problem,
                                    InitialStrategy::kQbpZeroWireCost, 1993);
  MultilevelOptions options;
  options.coarse_solver.iterations = 40;
  options.refine_solver.iterations = 20;
  const auto result =
      solve_qbp_multilevel(instance.problem, initial.assignment, options);
  ASSERT_TRUE(result.finest.found_feasible);
  EXPECT_TRUE(instance.problem.is_feasible(result.finest.best_feasible));
  // Hierarchy really coarsened.
  ASSERT_GE(result.level_sizes.size(), 2u);
  EXPECT_LT(result.level_sizes[1], result.level_sizes[0]);
}

// ------------------------------------------------------- determinism ----

TEST(Coarsen, MatchingDeterministicAcrossInnerThreads) {
  // The matching's proposal phase runs on the shared pool; the commit stays
  // serial.  Cluster maps must be bit-identical at every thread count.
  const auto small = medium_problem(6);
  const auto large = make_scaling_problem(1500, 0xdecaf);
  for (const PartitionProblem* problem : {&small, &large}) {
    CoarsenOptions reference_options;
    const auto reference = coarsen(*problem, reference_options);
    for (const std::int32_t threads : {2, 8}) {
      CoarsenOptions options;
      options.inner_threads = threads;
      const auto parallel = coarsen(*problem, options);
      EXPECT_EQ(parallel.num_clusters, reference.num_clusters)
          << "inner_threads=" << threads;
      EXPECT_EQ(parallel.cluster_of, reference.cluster_of)
          << "inner_threads=" << threads;
    }
  }
}

TEST(Multilevel, BitIdenticalAcrossInnerThreads) {
  const auto problem = make_scaling_problem(600, 7);
  const auto initial = make_initial(problem, InitialStrategy::kRandom, 7);
  const auto run = [&](std::int32_t threads) {
    MultilevelOptions options;
    options.coarsest_target = 50;
    options.coarse_solver.iterations = 20;
    options.refine_solver.iterations = 10;
    options.coarsen.inner_threads = threads;
    options.coarse_solver.inner_threads = threads;
    options.refine_solver.inner_threads = threads;
    return solve_qbp_multilevel(problem, initial.assignment, options);
  };
  const auto reference = run(1);
  for (const std::int32_t threads : {2, 8}) {
    const auto result = run(threads);
    EXPECT_EQ(result.levels_used, reference.levels_used);
    EXPECT_EQ(result.level_sizes, reference.level_sizes);
    EXPECT_EQ(result.finest.best_penalized, reference.finest.best_penalized)
        << "inner_threads=" << threads;
    EXPECT_EQ(result.finest.best, reference.finest.best);
    ASSERT_EQ(result.finest.found_feasible, reference.finest.found_feasible);
    if (reference.finest.found_feasible) {
      EXPECT_EQ(result.finest.best_feasible, reference.finest.best_feasible);
      EXPECT_EQ(result.finest.best_feasible_objective,
                reference.finest.best_feasible_objective);
    }
  }
}

// ------------------------------------------------- lift round-trip ----

TEST_P(CoarsenSweep, ProjectThenPolishKeepsCapacity) {
  // The refinement descent's C1 invariant, exercised exactly the way the
  // V-cycle uses it: project a feasible coarse assignment, polish, and the
  // capacity constraint must still hold (C2 may be traded against the
  // penalty mid-descent; solve_qbp_multilevel falls back to the projection
  // when that trade does not pay off).
  const auto problem = medium_problem(GetParam());
  const auto coarse = coarsen(problem);
  Rng rng(GetParam() ^ 0x33);
  for (int trial = 0; trial < 300; ++trial) {
    const auto coarse_assignment = test::random_complete(
        coarse.num_clusters, problem.num_partitions(), rng);
    if (!coarse.problem.is_feasible(coarse_assignment)) continue;
    Assignment u = uncoarsen(coarse, coarse_assignment);
    ASSERT_TRUE(problem.is_feasible(u));
    DeltaEvaluator evaluator(problem, kPaperPenalty);
    polish_iterate(problem, evaluator, u, 3, GetParam(), 1);
    EXPECT_TRUE(problem.satisfies_capacity(u));
    break;
  }
}

TEST(Multilevel, RefinementNeverLosesFeasibility) {
  // Pure project + polish + repair path (no per-level Burkard runs): every
  // feasibility claim at the finest level must verify, for every seed where
  // the coarsest solve finds a feasible point.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto problem = medium_problem(seed);
    const auto initial =
        make_initial(problem, InitialStrategy::kGreedyBalanced, seed);
    MultilevelOptions options;
    options.coarsest_target = 10;
    options.refine_burkard_max_n = 0;
    options.coarse_solver.iterations = 30;
    const auto result =
        solve_qbp_multilevel(problem, initial.assignment, options);
    if (result.finest.found_feasible) {
      EXPECT_TRUE(problem.is_feasible(result.finest.best_feasible));
      EXPECT_EQ(problem.objective(result.finest.best_feasible),
                result.finest.best_feasible_objective);
    }
  }
}

// ------------------------------------------------------- termination ----

TEST(Multilevel, ShrinkRatioFloorStopsHierarchy) {
  const auto problem = make_scaling_problem(1200, 0xbeef);
  const auto initial = make_initial(problem, InitialStrategy::kRandom, 3);
  MultilevelOptions options;
  options.max_levels = MultilevelOptions::kMaxLevels;
  options.coarsest_target = 1;  // only the shrink floor may stop it
  options.min_shrink = 0.75;
  options.coarse_solver.iterations = 5;
  options.refine_solver.iterations = 2;
  const auto result = solve_qbp_multilevel(problem, initial.assignment, options);
  // Every committed level shrank by at least the floor, and the hierarchy
  // terminated well before the depth cap (matching merges at most pairs, so
  // unmatchable tails stall the shrink ratio).
  ASSERT_GE(result.level_sizes.size(), 2u);
  EXPECT_LT(result.levels_used, MultilevelOptions::kMaxLevels);
  for (std::size_t level = 0; level + 1 < result.level_sizes.size(); ++level) {
    EXPECT_LT(result.level_sizes[level + 1],
              static_cast<std::int32_t>(options.min_shrink *
                                        result.level_sizes[level]));
  }
}

TEST(Multilevel, CoarsestTargetStopsHierarchy) {
  const auto problem = make_scaling_problem(1200, 0xbeef);
  const auto initial = make_initial(problem, InitialStrategy::kRandom, 3);
  MultilevelOptions options;
  options.max_levels = MultilevelOptions::kMaxLevels;
  options.coarsest_target = 150;
  options.coarse_solver.iterations = 5;
  options.refine_solver.iterations = 2;
  const auto result = solve_qbp_multilevel(problem, initial.assignment, options);
  // Only the coarsest level may sit at or below the target.
  for (std::size_t level = 0; level + 1 < result.level_sizes.size(); ++level) {
    EXPECT_GT(result.level_sizes[level], options.coarsest_target);
  }
}

// ------------------------------------------------------- equivalence ----

TEST(Multilevel, MaxLevelsOneMatchesFlatSolve) {
  // max_levels = 1 disables coarsening: the V-cycle must reproduce the flat
  // coarse_solver run bit for bit.
  const auto problem = medium_problem(2);
  const auto initial =
      make_initial(problem, InitialStrategy::kGreedyBalanced, 2);
  MultilevelOptions options;
  options.max_levels = 1;
  options.coarse_solver.iterations = 25;
  const auto multilevel =
      solve_qbp_multilevel(problem, initial.assignment, options);
  const auto flat = solve_qbp(problem, initial.assignment, options.coarse_solver);
  EXPECT_EQ(multilevel.levels_used, 0);
  ASSERT_EQ(multilevel.level_sizes,
            std::vector<std::int32_t>{problem.num_components()});
  EXPECT_EQ(multilevel.finest.best_penalized, flat.best_penalized);
  EXPECT_EQ(multilevel.finest.best, flat.best);
  ASSERT_EQ(multilevel.finest.found_feasible, flat.found_feasible);
  if (flat.found_feasible) {
    EXPECT_EQ(multilevel.finest.best_feasible, flat.best_feasible);
    EXPECT_EQ(multilevel.finest.best_feasible_objective,
              flat.best_feasible_objective);
  }
}

}  // namespace
}  // namespace qbp
