#include <gtest/gtest.h>

#include <sstream>

#include "netlist/generator.hpp"
#include "netlist/io.hpp"
#include "netlist/netlist.hpp"
#include "netlist/stats.hpp"

namespace qbp {
namespace {

// ------------------------------------------------------------ Netlist ----

TEST(Netlist, AddComponentsAssignsDenseIds) {
  Netlist netlist("n");
  EXPECT_EQ(netlist.add_component("a", 1.0), 0);
  EXPECT_EQ(netlist.add_component("b", 2.0), 1);
  EXPECT_EQ(netlist.num_components(), 2);
  EXPECT_EQ(netlist.component(1).name, "b");
  EXPECT_DOUBLE_EQ(netlist.component_size(1), 2.0);
}

TEST(Netlist, TotalAndSizesVector) {
  Netlist netlist;
  netlist.add_component("a", 1.5);
  netlist.add_component("b", 2.5);
  EXPECT_DOUBLE_EQ(netlist.total_size(), 4.0);
  EXPECT_EQ(netlist.sizes(), (std::vector<double>{1.5, 2.5}));
}

TEST(Netlist, WiresAccumulateAcrossCalls) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_wires(0, 1, 2);
  netlist.add_wires(1, 0, 3);  // reversed order, same pair
  netlist.finalize();
  ASSERT_EQ(netlist.bundles().size(), 1u);
  EXPECT_EQ(netlist.bundles()[0].multiplicity, 5);
  EXPECT_EQ(netlist.total_wires(), 5);
  EXPECT_EQ(netlist.num_connected_pairs(), 1);
}

TEST(Netlist, ConnectionMatrixIsSymmetric) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_component("c", 1.0);
  netlist.add_wires(0, 1, 5);
  netlist.add_wires(1, 2, 2);
  const auto& a = netlist.connection_matrix();
  EXPECT_EQ(a.value_or(0, 1, 0), 5);
  EXPECT_EQ(a.value_or(1, 0, 0), 5);
  EXPECT_EQ(a.value_or(1, 2, 0), 2);
  EXPECT_EQ(a.value_or(2, 1, 0), 2);
  EXPECT_EQ(a.value_or(0, 2, 0), 0);
}

TEST(Netlist, ConnectionMatrixInvalidatedByNewWires) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  EXPECT_EQ(netlist.connection_matrix().value_or(0, 1, 0), 0);
  netlist.add_wires(0, 1, 1);
  EXPECT_EQ(netlist.connection_matrix().value_or(0, 1, 0), 1);
}

TEST(Netlist, DegreeCountsDistinctNeighbors) {
  Netlist netlist;
  for (int k = 0; k < 4; ++k) netlist.add_component("c", 1.0);
  netlist.add_wires(0, 1, 7);
  netlist.add_wires(0, 2, 1);
  EXPECT_EQ(netlist.degree(0), 2);
  EXPECT_EQ(netlist.degree(1), 1);
  EXPECT_EQ(netlist.degree(3), 0);
}

TEST(Netlist, ValidateAcceptsGoodNetlist) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 0.5);
  netlist.add_wires(0, 1, 1);
  EXPECT_TRUE(netlist.validate().empty());
}

TEST(Netlist, ValidateRejectsNonPositiveSize) {
  Netlist netlist;
  netlist.add_component("a", 0.0);
  EXPECT_FALSE(netlist.validate().empty());
}

// -------------------------------------------------------------- stats ----

TEST(Stats, ComputesBasics) {
  Netlist netlist("s");
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 10.0);
  netlist.add_component("c", 5.0);
  netlist.add_wires(0, 1, 4);
  const auto stats = compute_stats(netlist);
  EXPECT_EQ(stats.num_components, 3);
  EXPECT_EQ(stats.total_wires, 4);
  EXPECT_EQ(stats.num_connected_pairs, 1);
  EXPECT_DOUBLE_EQ(stats.min_size, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_size, 10.0);
  EXPECT_DOUBLE_EQ(stats.size_ratio, 10.0);
  EXPECT_EQ(stats.isolated_components, 1);
  EXPECT_EQ(stats.max_degree, 1);
  EXPECT_FALSE(to_string(stats).empty());
}

TEST(Stats, EmptyNetlist) {
  const auto stats = compute_stats(Netlist("empty"));
  EXPECT_EQ(stats.num_components, 0);
  EXPECT_DOUBLE_EQ(stats.min_size, 0.0);
  EXPECT_DOUBLE_EQ(stats.avg_degree, 0.0);
}

// ----------------------------------------------------------------- io ----

TEST(Io, RoundTripPreservesNetlist) {
  Netlist original("roundtrip");
  original.add_component("alu", 3.25);
  original.add_component("regfile", 1.5);
  original.add_component("dec", 0.75);
  original.add_wires(0, 1, 4);
  original.add_wires(1, 2, 1);

  std::ostringstream out;
  write_netlist(out, original);

  Netlist parsed;
  std::istringstream in(out.str());
  const auto result = read_netlist(in, parsed);
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_EQ(parsed.name(), "roundtrip");
  EXPECT_EQ(parsed.num_components(), 3);
  EXPECT_DOUBLE_EQ(parsed.component_size(0), 3.25);
  EXPECT_EQ(parsed.component(1).name, "regfile");
  parsed.finalize();
  EXPECT_EQ(parsed.bundles(), original.bundles());
}

TEST(Io, CommentsAndBlankLinesIgnored) {
  std::istringstream in(
      "# header comment\n"
      "circuit c1\n"
      "\n"
      "component a 1.0  # trailing comment\n"
      "component b 2.0\n"
      "wire 0 1 3\n");
  Netlist parsed;
  const auto result = read_netlist(in, parsed);
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_EQ(parsed.total_wires(), 3);
}

TEST(Io, ErrorsCarryLineNumbers) {
  std::istringstream in("circuit x\ncomponent a 1.0\nwire 0 5 1\n");
  Netlist parsed;
  const auto result = read_netlist(in, parsed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("line 3"), std::string::npos);
}

TEST(Io, RejectsBadKeyword) {
  std::istringstream in("banana\n");
  Netlist parsed;
  EXPECT_FALSE(read_netlist(in, parsed).ok);
}

TEST(Io, RejectsSelfLoopWire) {
  std::istringstream in("component a 1\ncomponent b 1\nwire 0 0 1\n");
  Netlist parsed;
  EXPECT_FALSE(read_netlist(in, parsed).ok);
}

TEST(Io, RejectsNonPositiveSize) {
  std::istringstream in("component a -1\n");
  Netlist parsed;
  EXPECT_FALSE(read_netlist(in, parsed).ok);
}

TEST(Io, RejectsNonPositiveMultiplicity) {
  std::istringstream in("component a 1\ncomponent b 1\nwire 0 1 0\n");
  Netlist parsed;
  EXPECT_FALSE(read_netlist(in, parsed).ok);
}

// ---------------------------------------------------------- generator ----

class GeneratorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSweep, HitsSpecTargetsExactly) {
  RandomNetlistSpec spec;
  spec.num_components = 120;
  spec.total_wires = 600;
  spec.seed = GetParam();
  const auto generated = generate_netlist(spec);
  EXPECT_EQ(generated.netlist.num_components(), spec.num_components);
  EXPECT_EQ(generated.netlist.total_wires(), spec.total_wires);
  EXPECT_TRUE(generated.netlist.validate().empty());
}

TEST_P(GeneratorSweep, NoIsolatedComponents) {
  RandomNetlistSpec spec;
  spec.num_components = 80;
  spec.total_wires = 200;
  spec.seed = GetParam();
  const auto generated = generate_netlist(spec);
  EXPECT_EQ(compute_stats(generated.netlist).isolated_components, 0);
}

TEST_P(GeneratorSweep, HiddenSlotsInRange) {
  RandomNetlistSpec spec;
  spec.num_components = 60;
  spec.total_wires = 150;
  spec.num_slots = 16;
  spec.seed = GetParam();
  const auto generated = generate_netlist(spec);
  ASSERT_EQ(generated.hidden_slot.size(), 60u);
  for (const auto slot : generated.hidden_slot) {
    EXPECT_GE(slot, 0);
    EXPECT_LT(slot, 16);
  }
}

TEST_P(GeneratorSweep, SizesSpanRoughlyTwoOrdersOfMagnitude) {
  RandomNetlistSpec spec;
  spec.num_components = 400;
  spec.total_wires = 1200;
  spec.seed = GetParam();
  const auto stats = compute_stats(generate_netlist(spec).netlist);
  EXPECT_GE(stats.size_ratio, 15.0);
  EXPECT_LE(stats.size_ratio, 120.0);
}

TEST_P(GeneratorSweep, DeterministicInSeed) {
  RandomNetlistSpec spec;
  spec.num_components = 50;
  spec.total_wires = 120;
  spec.seed = GetParam();
  const auto a = generate_netlist(spec);
  const auto b = generate_netlist(spec);
  EXPECT_EQ(a.hidden_slot, b.hidden_slot);
  EXPECT_EQ(a.netlist.bundles(), b.netlist.bundles());
  EXPECT_EQ(a.netlist.sizes(), b.netlist.sizes());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 1993u));

TEST(Generator, HiddenPlacementIsSizeBalanced) {
  RandomNetlistSpec spec;
  spec.num_components = 320;
  spec.total_wires = 900;
  spec.num_slots = 16;
  spec.seed = 5;
  const auto generated = generate_netlist(spec);
  std::vector<double> usage(16, 0.0);
  for (std::int32_t j = 0; j < spec.num_components; ++j) {
    usage[generated.hidden_slot[j]] += generated.netlist.component_size(j);
  }
  const double mean = generated.netlist.total_size() / 16.0;
  for (const double u : usage) {
    EXPECT_GT(u, 0.55 * mean);
    EXPECT_LT(u, 1.45 * mean);
  }
}

TEST(Generator, LocalityBiasesWiresTowardNearbySlots) {
  RandomNetlistSpec local;
  local.num_components = 200;
  local.total_wires = 2000;
  local.locality = 0.9;
  local.seed = 9;
  RandomNetlistSpec uniform = local;
  uniform.locality = 0.0;

  const auto count_local = [](const GeneratedNetlist& generated) {
    std::int64_t local_wires = 0;
    const std::int32_t width = generated.spec.grid_width;
    for (const auto& bundle : generated.netlist.bundles()) {
      const auto a = generated.hidden_slot[bundle.a];
      const auto b = generated.hidden_slot[bundle.b];
      const std::int32_t dist = std::abs(a % width - b % width) +
                                std::abs(a / width - b / width);
      if (dist <= 1) local_wires += bundle.multiplicity;
    }
    return local_wires;
  };
  EXPECT_GT(count_local(generate_netlist(local)),
            count_local(generate_netlist(uniform)) * 2);
}

}  // namespace
}  // namespace qbp
