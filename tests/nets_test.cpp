#include <gtest/gtest.h>

#include "netlist/nets.hpp"

namespace qbp {
namespace {

HyperNetlist make_hyper() {
  HyperNetlist hyper("h");
  for (int k = 0; k < 5; ++k) {
    hyper.add_component("c" + std::to_string(k), 1.0 + k);
  }
  hyper.add_net("n2", {0, 1}, 3);        // 2-pin
  hyper.add_net("n4", {1, 2, 3, 4}, 1);  // 4-pin
  return hyper;
}

TEST(HyperNetlist, BasicAccessors) {
  const auto hyper = make_hyper();
  EXPECT_EQ(hyper.num_components(), 5);
  EXPECT_EQ(hyper.nets().size(), 2u);
  EXPECT_EQ(hyper.total_pins(), 6);
  EXPECT_TRUE(hyper.validate().empty());
}

TEST(HyperNetlist, CliqueExpansionOfTwoPinNetIsExact) {
  const auto hyper = make_hyper();
  const auto flat = hyper.expand(NetExpansion::kClique);
  EXPECT_EQ(flat.connection_matrix().value_or(0, 1, 0), 3);
  EXPECT_EQ(flat.connection_matrix().value_or(1, 0, 0), 3);
}

TEST(HyperNetlist, CliqueExpansionPairCount) {
  const auto hyper = make_hyper();
  const auto flat = hyper.expand(NetExpansion::kClique);
  // n2: 1 pair; n4: C(4,2) = 6 pairs; pair (1,2..) overlap check: n2 is
  // {0,1}, n4 covers {1,2,3,4} -> all 7 pairs distinct.
  EXPECT_EQ(flat.num_connected_pairs(), 7);
  EXPECT_EQ(expanded_pair_count(hyper.nets()[1], NetExpansion::kClique), 6);
}

TEST(HyperNetlist, StarExpansionUsesDriver) {
  const auto hyper = make_hyper();
  const auto flat = hyper.expand(NetExpansion::kStar);
  // n4 driver is pin 1: edges 1-2, 1-3, 1-4 only.
  EXPECT_EQ(flat.connection_matrix().value_or(1, 2, 0), 1);
  EXPECT_EQ(flat.connection_matrix().value_or(1, 3, 0), 1);
  EXPECT_EQ(flat.connection_matrix().value_or(2, 3, 0), 0);
  EXPECT_EQ(flat.num_connected_pairs(), 4);  // 0-1, 1-2, 1-3, 1-4
  EXPECT_EQ(expanded_pair_count(hyper.nets()[1], NetExpansion::kStar), 3);
}

TEST(HyperNetlist, ExpansionPreservesComponents) {
  const auto hyper = make_hyper();
  const auto flat = hyper.expand(NetExpansion::kClique);
  ASSERT_EQ(flat.num_components(), 5);
  EXPECT_DOUBLE_EQ(flat.component_size(4), 5.0);
  EXPECT_EQ(flat.component(2).name, "c2");
  EXPECT_EQ(flat.name(), "h");
}

TEST(HyperNetlist, OverlappingNetsAccumulate) {
  HyperNetlist hyper;
  hyper.add_component("a", 1.0);
  hyper.add_component("b", 1.0);
  hyper.add_component("c", 1.0);
  hyper.add_net("x", {0, 1, 2}, 2);
  hyper.add_net("y", {0, 1}, 5);
  const auto flat = hyper.expand(NetExpansion::kClique);
  EXPECT_EQ(flat.connection_matrix().value_or(0, 1, 0), 7);  // 2 + 5
  EXPECT_EQ(flat.connection_matrix().value_or(0, 2, 0), 2);
}

TEST(HyperNetlist, ValidateRejectsSinglePinNet) {
  HyperNetlist hyper;
  hyper.add_component("a", 1.0);
  hyper.add_net("bad", {0}, 1);
  EXPECT_FALSE(hyper.validate().empty());
}

TEST(HyperNetlist, ValidateRejectsDuplicatePins) {
  HyperNetlist hyper;
  hyper.add_component("a", 1.0);
  hyper.add_component("b", 1.0);
  hyper.add_net("bad", {0, 1, 0}, 1);
  EXPECT_NE(hyper.validate().find("twice"), std::string::npos);
}

TEST(HyperNetlist, ValidateRejectsOutOfRangePin) {
  HyperNetlist hyper;
  hyper.add_component("a", 1.0);
  hyper.add_component("b", 1.0);
  hyper.add_net("bad", {0, 7}, 1);
  EXPECT_FALSE(hyper.validate().empty());
}

TEST(HyperNetlist, ValidateRejectsNonPositiveWeight) {
  HyperNetlist hyper;
  hyper.add_component("a", 1.0);
  hyper.add_component("b", 1.0);
  hyper.add_net("bad", {0, 1}, 0);
  EXPECT_FALSE(hyper.validate().empty());
}

}  // namespace
}  // namespace qbp
