// util/parallel: the deterministic fork-join pool.  The tests pin the
// bit-identical contract (chunk layout independent of thread count, fixed
// reduction order, find_first == serial scan) and the pool mechanics
// (full coverage, nested inlining, fair-share accounting).
#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace qbp::par {
namespace {

TEST(ChunkPlan, IsAPureFunctionOfRangeAndGrain) {
  const ChunkPlan plan = ChunkPlan::make(1000, 64);
  EXPECT_EQ(plan.count, 16);
  EXPECT_EQ(plan.begin(0), 0);
  EXPECT_EQ(plan.end(0), 64);
  EXPECT_EQ(plan.begin(15), 960);
  EXPECT_EQ(plan.end(15), 1000);  // last chunk is the remainder
  // Identical inputs always give identical layouts -- there is no thread
  // count anywhere in the computation.
  const ChunkPlan again = ChunkPlan::make(1000, 64);
  EXPECT_EQ(plan.count, again.count);
  for (std::int32_t c = 0; c < plan.count; ++c) {
    EXPECT_EQ(plan.begin(c), again.begin(c));
    EXPECT_EQ(plan.end(c), again.end(c));
  }
}

TEST(ChunkPlan, DegenerateRanges) {
  EXPECT_EQ(ChunkPlan::make(0, 16).count, 0);
  EXPECT_EQ(ChunkPlan::make(-5, 16).count, 0);
  const ChunkPlan tiny = ChunkPlan::make(3, 16);
  EXPECT_EQ(tiny.count, 1);
  EXPECT_EQ(tiny.end(0), 3);
  // grain < 1 is clamped to 1, not UB.
  EXPECT_EQ(ChunkPlan::make(5, 0).count, 5);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::int32_t threads : {1, 2, 8}) {
    const std::int64_t n = 4099;  // prime, deliberately not a grain multiple
    std::vector<std::atomic<std::int32_t>> touched(n);
    parallel_for(n, 64, threads,
                 [&](std::int64_t begin, std::int64_t end, std::int32_t) {
                   for (std::int64_t i = begin; i < end; ++i) {
                     touched[static_cast<std::size_t>(i)].fetch_add(1);
                   }
                 });
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(touched[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

// The core contract: a floating-point reduction is bitwise identical at
// every thread count, because partials are per chunk and the fold order is
// chunk order.
TEST(ParallelReduce, BitIdenticalAcrossThreadCounts) {
  const std::int64_t n = 10007;
  std::vector<double> values(static_cast<std::size_t>(n));
  Rng rng(0x9e3779b9u);
  for (double& v : values) v = rng.next_double() * 1e6 - 5e5;

  auto sum_at = [&](std::int32_t threads) {
    return parallel_reduce(
        n, 128, threads, 0.0,
        [&](std::int64_t begin, std::int64_t end) {
          double acc = 0.0;
          for (std::int64_t i = begin; i < end; ++i) {
            acc += values[static_cast<std::size_t>(i)];
          }
          return acc;
        },
        [](double acc, double partial) { return acc + partial; });
  };

  const double at1 = sum_at(1);
  EXPECT_EQ(at1, sum_at(2));  // EQ on doubles: bitwise-equal sums
  EXPECT_EQ(at1, sum_at(8));

  // And the 1-thread result equals the hand-rolled chunked left fold.
  const ChunkPlan plan = ChunkPlan::make(n, 128);
  double manual = 0.0;
  for (std::int32_t c = 0; c < plan.count; ++c) {
    double partial = 0.0;
    for (std::int64_t i = plan.begin(c); i < plan.end(c); ++i) {
      partial += values[static_cast<std::size_t>(i)];
    }
    manual += partial;
  }
  EXPECT_EQ(at1, manual);
}

TEST(ParallelReduce, ArgminFirstWinsMatchesSerialScan) {
  const std::int64_t n = 5000;
  std::vector<double> cost(static_cast<std::size_t>(n));
  Rng rng(1993);
  for (double& c : cost) c = static_cast<double>(rng.next_below(50));  // many ties

  struct Best {
    std::int64_t index = -1;
    double value = 0.0;
  };
  std::int64_t serial = 0;
  for (std::int64_t i = 1; i < n; ++i) {
    if (cost[static_cast<std::size_t>(i)] < cost[static_cast<std::size_t>(serial)]) serial = i;
  }
  for (const std::int32_t threads : {1, 2, 8}) {
    const Best best = parallel_reduce(
        n, 256, threads, Best{},
        [&](std::int64_t begin, std::int64_t end) {
          Best local;
          for (std::int64_t i = begin; i < end; ++i) {
            if (local.index < 0 || cost[static_cast<std::size_t>(i)] < local.value) {
              local = Best{i, cost[static_cast<std::size_t>(i)]};
            }
          }
          return local;
        },
        [](Best acc, Best partial) {
          // Strict <: earlier chunks win ties, exactly like the serial scan.
          if (acc.index < 0 || (partial.index >= 0 && partial.value < acc.value)) {
            return partial;
          }
          return acc;
        });
    EXPECT_EQ(best.index, serial) << "threads=" << threads;
  }
}

TEST(FindFirst, MatchesSerialScanIncludingStartCursor) {
  const std::int64_t n = 3000;
  Rng rng(0xfeedu);
  std::vector<std::uint8_t> hit(static_cast<std::size_t>(n), 0);
  for (std::int64_t i = 0; i < n; ++i) {
    hit[static_cast<std::size_t>(i)] = rng.next_below(97) == 0 ? 1 : 0;
  }
  auto scan = [&](std::int64_t begin, std::int64_t end) -> std::int64_t {
    for (std::int64_t i = begin; i < end; ++i) {
      if (hit[static_cast<std::size_t>(i)] != 0) return i;
    }
    return -1;
  };
  for (std::int64_t start = 0; start < n; start += 131) {
    std::int64_t serial = -1;
    for (std::int64_t i = start; i < n; ++i) {
      if (hit[static_cast<std::size_t>(i)] != 0) {
        serial = i;
        break;
      }
    }
    for (const std::int32_t threads : {1, 2, 8}) {
      EXPECT_EQ(find_first(n, start, 64, threads, scan), serial)
          << "start=" << start << " threads=" << threads;
    }
  }
  EXPECT_EQ(find_first(n, n, 64, 8, scan), -1);      // empty window
  EXPECT_EQ(find_first(0, 0, 64, 8, scan), -1);      // empty range
}

TEST(FindFirst, NoMatchReturnsMinusOne) {
  auto scan = [](std::int64_t, std::int64_t) -> std::int64_t { return -1; };
  for (const std::int32_t threads : {1, 2, 8}) {
    EXPECT_EQ(find_first(10000, 0, 64, threads, scan), -1);
  }
}

// A region issued from inside a pool worker must run inline (no nested
// fan-out, no deadlock) and still produce the same coverage.
TEST(Pool, NestedRegionsRunInlineAndComplete) {
  Pool::instance().warm(8);
  const std::int64_t outer = 64;
  const std::int64_t inner = 257;
  std::vector<std::atomic<std::int64_t>> sums(outer);
  std::atomic<std::int32_t> nested_on_worker{0};
  parallel_for(outer, 4, 8, [&](std::int64_t begin, std::int64_t end, std::int32_t) {
    if (begin == 0 && !Pool::on_worker_thread()) {
      // Hold the submitting thread's first chunk until a helper has
      // demonstrably run one, so the nested-inline path is exercised even
      // when a loaded machine would otherwise let the caller finish every
      // chunk before any helper wakes.
      while (nested_on_worker.load() == 0) std::this_thread::yield();
    }
    for (std::int64_t o = begin; o < end; ++o) {
      if (Pool::on_worker_thread()) nested_on_worker.fetch_add(1);
      parallel_for(inner, 32, 8,
                   [&](std::int64_t b, std::int64_t e, std::int32_t) {
                     for (std::int64_t i = b; i < e; ++i) {
                       sums[static_cast<std::size_t>(o)].fetch_add(i);
                     }
                   });
    }
  });
  const std::int64_t expect = inner * (inner - 1) / 2;
  for (std::int64_t o = 0; o < outer; ++o) {
    ASSERT_EQ(sums[static_cast<std::size_t>(o)].load(), expect);
  }
  // With 8 requested threads some outer chunks ran on helpers, so the
  // inline-nesting path was actually exercised.
  EXPECT_GT(nested_on_worker.load(), 0);
}

TEST(Pool, FairShareBaseIsOverridableAndResultsUnchanged) {
  const std::int32_t saved = fair_share_base();
  set_fair_share_base(2);  // concurrent regions get at most 2 slots total
  std::vector<std::int64_t> out(1000, 0);
  parallel_for(1000, 50, 8, [&](std::int64_t b, std::int64_t e, std::int32_t) {
    for (std::int64_t i = b; i < e; ++i) out[static_cast<std::size_t>(i)] = i * i;
  });
  set_fair_share_base(0);
  EXPECT_EQ(fair_share_base(), saved);
  for (std::int64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(out[static_cast<std::size_t>(i)], i * i);
  }
}

TEST(Pool, CountsRegionsAndSpawnsHelpersOnDemand) {
  Pool& pool = Pool::instance();
  const std::uint64_t regions_before = pool.regions_run();
  parallel_for(10000, 64, 8,
               [&](std::int64_t, std::int64_t, std::int32_t) {});
  EXPECT_GT(pool.regions_run(), regions_before);
  EXPECT_GT(pool.helpers_spawned(), 0);  // 8-thread request grew the pool
  pool.warm(4);
  EXPECT_GE(pool.helpers_spawned(), 4);
  // Idle pool: utilization is a fraction in [0, 1].
  EXPECT_GE(utilization(), 0.0);
  EXPECT_LE(utilization(), 1.0);
}

TEST(Pool, SingleThreadRequestNeverFansOut) {
  Pool& pool = Pool::instance();
  const std::uint64_t parallel_before = pool.regions_parallel();
  std::vector<std::int64_t> order;
  parallel_for(1000, 64, 1,
               [&](std::int64_t begin, std::int64_t, std::int32_t) {
                 order.push_back(begin);  // safe: inline means one thread
               });
  EXPECT_EQ(pool.regions_parallel(), parallel_before);
  // Inline execution visits chunks in ascending order.
  ASSERT_EQ(order.size(), 16u);
  for (std::size_t c = 1; c < order.size(); ++c) {
    EXPECT_LT(order[c - 1], order[c]);
  }
}

}  // namespace
}  // namespace qbp::par
