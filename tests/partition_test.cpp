#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "partition/assignment.hpp"
#include "partition/cost.hpp"
#include "partition/deviation.hpp"
#include "partition/topology.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

// ----------------------------------------------------------- topology ----

TEST(Topology, GridManhattanDistances) {
  const auto topo = PartitionTopology::grid(2, 2, CostKind::kManhattan);
  EXPECT_EQ(topo.num_partitions(), 4);
  // Row-major ids: 0 1 / 2 3.
  EXPECT_DOUBLE_EQ(topo.wire_cost(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(topo.wire_cost(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(topo.wire_cost(0, 3), 2.0);
  EXPECT_DOUBLE_EQ(topo.wire_cost(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(topo.wire_cost(2, 2), 0.0);
  EXPECT_TRUE(topo.wire_cost().is_symmetric());
  EXPECT_EQ(topo.wire_cost(), topo.delay());
}

TEST(Topology, GridMatchesPaperFigure1) {
  // Section 3.3: B = D = [0 1 1 2; 1 0 2 1; 1 2 0 1; 2 1 1 0].
  const auto topo = PartitionTopology::grid(2, 2, CostKind::kManhattan);
  const auto expected = Matrix<double>::from_rows(
      {{0, 1, 1, 2}, {1, 0, 2, 1}, {1, 2, 0, 1}, {2, 1, 1, 0}});
  EXPECT_EQ(topo.wire_cost(), expected);
}

TEST(Topology, UnitCostCountsCrossings) {
  const auto topo = PartitionTopology::grid(2, 2, CostKind::kUnit);
  EXPECT_DOUBLE_EQ(topo.wire_cost(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(topo.wire_cost(1, 2), 1.0);
  EXPECT_DOUBLE_EQ(topo.wire_cost(1, 1), 0.0);
  // Delay stays Manhattan even with unit wire costs.
  EXPECT_DOUBLE_EQ(topo.delay(0, 3), 2.0);
}

TEST(Topology, QuadraticCost) {
  const auto topo = PartitionTopology::grid(1, 4, CostKind::kQuadratic);
  EXPECT_DOUBLE_EQ(topo.wire_cost(0, 3), 9.0);
  EXPECT_DOUBLE_EQ(topo.delay(0, 3), 3.0);
}

TEST(Topology, GridCoordinates) {
  const auto topo = PartitionTopology::grid(2, 3, CostKind::kManhattan);
  EXPECT_EQ(topo.grid_x(4), 1);
  EXPECT_EQ(topo.grid_y(4), 1);
  EXPECT_DOUBLE_EQ(topo.slot_distance(0, 5), 3.0);
}

TEST(Topology, CapacitiesSettable) {
  auto topo = PartitionTopology::grid(1, 3, CostKind::kManhattan, 2.0);
  EXPECT_DOUBLE_EQ(topo.total_capacity(), 6.0);
  topo.set_capacity(1, 5.0);
  EXPECT_DOUBLE_EQ(topo.capacity(1), 5.0);
  topo.set_capacities({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(topo.total_capacity(), 3.0);
}

TEST(Topology, CustomTopology) {
  auto b = Matrix<double>::from_rows({{0, 2}, {3, 0}});
  auto d = Matrix<double>::from_rows({{0, 1}, {1, 0}});
  const auto topo = PartitionTopology::custom(b, d, {4.0, 5.0});
  EXPECT_EQ(topo.num_partitions(), 2);
  EXPECT_DOUBLE_EQ(topo.wire_cost(1, 0), 3.0);  // B need not be symmetric
  EXPECT_DOUBLE_EQ(topo.slot_distance(0, 1), 1.0);
  EXPECT_TRUE(topo.validate().empty());
}

TEST(Topology, ValidateCatchesNonzeroDiagonal) {
  auto b = Matrix<double>::from_rows({{1.0}});
  auto d = Matrix<double>::from_rows({{0.0}});
  EXPECT_FALSE(PartitionTopology::custom(b, d, {1.0}).validate().empty());
}

TEST(Topology, ValidateCatchesNegativeCapacity) {
  auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan);
  topo.set_capacity(0, -1.0);
  EXPECT_FALSE(topo.validate().empty());
}

// --------------------------------------------------------- assignment ----

TEST(Assignment, CompletenessTracking) {
  Assignment assignment(3, 4);
  EXPECT_FALSE(assignment.is_complete());
  assignment.set(0, 1);
  assignment.set(1, 0);
  EXPECT_FALSE(assignment.is_complete());
  assignment.set(2, 3);
  EXPECT_TRUE(assignment.is_complete());
  EXPECT_EQ(assignment[2], 3);
}

TEST(Assignment, MembersOf) {
  Assignment assignment(4, 2);
  assignment.set(0, 0);
  assignment.set(1, 1);
  assignment.set(2, 0);
  assignment.set(3, 1);
  EXPECT_EQ(assignment.members_of(0), (std::vector<std::int32_t>{0, 2}));
  EXPECT_EQ(assignment.members_of(1), (std::vector<std::int32_t>{1, 3}));
}

TEST(CapacityLedger, TracksUsageIncrementally) {
  Assignment assignment(2, 2);
  assignment.set(0, 0);
  assignment.set(1, 1);
  const std::vector<double> sizes{2.0, 3.0};
  const std::vector<double> caps{4.0, 4.0};
  CapacityLedger ledger(assignment, sizes, caps);
  EXPECT_DOUBLE_EQ(ledger.usage(0), 2.0);
  EXPECT_DOUBLE_EQ(ledger.slack(1), 1.0);
  EXPECT_TRUE(ledger.fits(0, 2.0));
  EXPECT_FALSE(ledger.fits(0, 2.1));
  ledger.remove(0, 2.0);
  ledger.add(1, 2.0);
  EXPECT_DOUBLE_EQ(ledger.usage(1), 5.0);
  EXPECT_EQ(ledger.violations(), 1);
  EXPECT_DOUBLE_EQ(ledger.total_overflow(), 1.0);
}

TEST(CapacityLedger, SatisfiesCapacityHelper) {
  Assignment assignment(2, 2);
  assignment.set(0, 0);
  assignment.set(1, 0);
  const std::vector<double> sizes{1.0, 1.0};
  EXPECT_TRUE(satisfies_capacity(assignment, sizes, std::vector<double>{2.0, 2.0}));
  EXPECT_FALSE(satisfies_capacity(assignment, sizes, std::vector<double>{1.5, 2.0}));
}

TEST(CapacityLedger, IncompleteAssignmentNeverSatisfies) {
  Assignment assignment(2, 2);
  assignment.set(0, 0);
  const std::vector<double> sizes{1.0, 1.0};
  EXPECT_FALSE(satisfies_capacity(assignment, sizes, std::vector<double>{9.0, 9.0}));
}

TEST(CapacityLedger, ReportMentionsOverflow) {
  Assignment assignment(1, 1);
  assignment.set(0, 0);
  const std::vector<double> sizes{2.0};
  const auto report =
      capacity_report(assignment, sizes, std::vector<double>{1.0});
  EXPECT_NE(report.find("OVERFLOW"), std::string::npos);
}

// --------------------------------------------------------------- cost ----

TEST(Cost, WirelengthCountsEachBundleOnce) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_wires(0, 1, 5);
  const auto topo = PartitionTopology::grid(2, 2, CostKind::kManhattan);
  Assignment assignment(2, 4);
  assignment.set(0, 0);
  assignment.set(1, 3);
  EXPECT_DOUBLE_EQ(wirelength(netlist, topo, assignment), 10.0);  // 5 * 2
  EXPECT_DOUBLE_EQ(quadratic_cost(netlist, topo, assignment), 20.0);
}

TEST(Cost, QuadraticIsTwiceWirelengthForSymmetricB) {
  const auto generated = [] {
    RandomNetlistSpec spec;
    spec.num_components = 40;
    spec.total_wires = 120;
    spec.num_slots = 4;
    spec.grid_width = 2;
    spec.seed = 3;
    return generate_netlist(spec);
  }();
  const auto topo = PartitionTopology::grid(2, 2, CostKind::kManhattan);
  Rng rng(5);
  const auto assignment = test::random_complete(40, 4, rng);
  EXPECT_NEAR(quadratic_cost(generated.netlist, topo, assignment),
              2.0 * wirelength(generated.netlist, topo, assignment), 1e-9);
}

TEST(Cost, SameParitionWiresAreFree) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_wires(0, 1, 9);
  const auto topo = PartitionTopology::grid(2, 2, CostKind::kManhattan);
  Assignment assignment(2, 4);
  assignment.set(0, 2);
  assignment.set(1, 2);
  EXPECT_DOUBLE_EQ(wirelength(netlist, topo, assignment), 0.0);
}

TEST(Cost, LinearCostSumsSelectedEntries) {
  const auto p = Matrix<double>::from_rows({{1, 2}, {3, 4}});
  Assignment assignment(2, 2);
  assignment.set(0, 1);
  assignment.set(1, 0);
  EXPECT_DOUBLE_EQ(linear_cost(p, assignment), 3.0 + 2.0);
  EXPECT_DOUBLE_EQ(linear_cost(Matrix<double>{}, assignment), 0.0);
}

TEST(Cost, ObjectiveCombinesTerms) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_wires(0, 1, 1);
  const auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan);
  const auto p = Matrix<double>::from_rows({{1, 0}, {0, 2}});
  Assignment assignment(2, 2);
  assignment.set(0, 0);
  assignment.set(1, 1);
  // linear = 1 + 2 = 3; quadratic = 2 (both directions).
  EXPECT_DOUBLE_EQ(objective(netlist, topo, p, 10.0, 100.0, assignment),
                   10.0 * 3.0 + 100.0 * 2.0);
}

class MoveDeltaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MoveDeltaSweep, MoveDeltaMatchesRecomputation) {
  const auto problem = test::make_tiny_problem({.seed = GetParam()});
  Rng rng(GetParam() ^ 0xabc);
  Assignment assignment = test::random_complete(problem.num_components(),
                                                problem.num_partitions(), rng);
  const auto& p = problem.linear_cost_matrix();
  for (int trial = 0; trial < 30; ++trial) {
    const auto j = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    const auto target = static_cast<PartitionId>(
        rng.next_below(problem.num_partitions()));
    const double before = objective(problem.netlist(), problem.topology(), p,
                                    problem.alpha(), problem.beta(), assignment);
    const double delta =
        move_delta_objective(problem.netlist(), problem.topology(), p,
                             problem.alpha(), problem.beta(), assignment, j,
                             target);
    Assignment moved = assignment;
    moved.set(j, target);
    const double after = objective(problem.netlist(), problem.topology(), p,
                                   problem.alpha(), problem.beta(), moved);
    EXPECT_NEAR(delta, after - before, 1e-9);
    assignment = moved;  // walk through state space
  }
}

TEST_P(MoveDeltaSweep, SwapDeltaMatchesRecomputation) {
  const auto problem =
      test::make_tiny_problem({.with_linear_term = true, .seed = GetParam()});
  Rng rng(GetParam() ^ 0xdef);
  Assignment assignment = test::random_complete(problem.num_components(),
                                                problem.num_partitions(), rng);
  const auto& p = problem.linear_cost_matrix();
  for (int trial = 0; trial < 30; ++trial) {
    const auto a = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    const auto b = static_cast<std::int32_t>(
        rng.next_below(problem.num_components()));
    if (a == b) continue;
    const double before = objective(problem.netlist(), problem.topology(), p,
                                    problem.alpha(), problem.beta(), assignment);
    const double delta =
        swap_delta_objective(problem.netlist(), problem.topology(), p,
                             problem.alpha(), problem.beta(), assignment, a, b);
    Assignment swapped = assignment;
    swapped.set(a, assignment[b]);
    swapped.set(b, assignment[a]);
    const double after = objective(problem.netlist(), problem.topology(), p,
                                   problem.alpha(), problem.beta(), swapped);
    EXPECT_NEAR(delta, after - before, 1e-9);
    assignment = swapped;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MoveDeltaSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 11u, 12u, 13u));

// ----------------------------------------------------------- deviation ----

TEST(Deviation, MatrixMatchesDefinition) {
  const auto topo = PartitionTopology::grid(2, 2, CostKind::kManhattan);
  const std::vector<double> sizes{2.0, 3.0};
  Assignment initial(2, 4);
  initial.set(0, 0);
  initial.set(1, 3);
  const auto p = deviation_cost_matrix(topo, sizes, initial);
  // p_ij = s_j * manhattan(i, initial(j)).
  EXPECT_DOUBLE_EQ(p(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(p(3, 0), 2.0 * 2.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 3.0 * 2.0);
  EXPECT_DOUBLE_EQ(p(3, 1), 0.0);
}

TEST(Deviation, TotalDeviationEqualsLinearCost) {
  const auto topo = PartitionTopology::grid(2, 2, CostKind::kManhattan);
  const std::vector<double> sizes{2.0, 3.0, 1.0};
  Assignment initial(3, 4);
  initial.set(0, 0);
  initial.set(1, 1);
  initial.set(2, 2);
  Assignment current(3, 4);
  current.set(0, 3);
  current.set(1, 1);
  current.set(2, 0);
  const auto p = deviation_cost_matrix(topo, sizes, initial);
  EXPECT_DOUBLE_EQ(total_deviation(topo, sizes, initial, current),
                   linear_cost(p, current));
  EXPECT_EQ(components_moved(initial, current), 2);
}

TEST(Deviation, ZeroWhenUnmoved) {
  const auto topo = PartitionTopology::grid(2, 2, CostKind::kManhattan);
  const std::vector<double> sizes{1.0};
  Assignment initial(1, 4);
  initial.set(0, 2);
  EXPECT_DOUBLE_EQ(total_deviation(topo, sizes, initial, initial), 0.0);
  EXPECT_EQ(components_moved(initial, initial), 0);
}

}  // namespace
}  // namespace qbp
