// Presolve reduction engine: rule soundness against the brute-force oracle,
// lift correctness, identity behavior on the standard instances, and the
// special-cases cross-check (LAP / GAP agree with the reducer's fixings).
#include "core/presolve.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "assign/lap.hpp"
#include "bench_support/circuits.hpp"
#include "core/brute_force.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "core/multilevel.hpp"
#include "core/special_cases.hpp"
#include "core/validate.hpp"
#include "engine/adapters.hpp"
#include "engine/pipeline.hpp"
#include "test_support.hpp"

namespace qbp {
namespace {

// A 1 x 3 row topology with one oversized component that fits only the
// widened partition 0: R0 must fix it there.
PartitionProblem make_r0_problem() {
  Netlist netlist("r0");
  const auto big = netlist.add_component("big", 10.0);
  const auto a = netlist.add_component("a", 1.0);
  const auto b = netlist.add_component("b", 1.0);
  netlist.add_wires(big, a, 2);
  netlist.add_wires(a, b, 1);
  PartitionTopology topology =
      PartitionTopology::grid(1, 3, CostKind::kManhattan);
  topology.set_capacity(0, 12.0);
  topology.set_capacity(1, 3.0);
  topology.set_capacity(2, 3.0);
  return PartitionProblem(std::move(netlist), std::move(topology),
                          TimingConstraints(3));
}

// A pendant, timing-free, tiny component hanging off a core triangle: R1
// must eliminate it with a response table.
PartitionProblem make_r1_problem() {
  Netlist netlist("r1");
  const auto a = netlist.add_component("a", 2.0);
  const auto b = netlist.add_component("b", 2.0);
  const auto c = netlist.add_component("c", 2.0);
  const auto pendant = netlist.add_component("p", 0.1);
  netlist.add_wires(a, b, 3);
  netlist.add_wires(b, c, 2);
  netlist.add_wires(a, c, 1);
  netlist.add_wires(c, pendant, 4);
  // Enough slack that R1's everywhere-reservation (pendant size subtracted
  // from every capacity) cannot exclude the true optimum's packing.
  PartitionTopology topology =
      PartitionTopology::grid(1, 3, CostKind::kManhattan, 5.0);
  TimingConstraints timing(4);
  timing.add(a, b, 2.0);
  return PartitionProblem(std::move(netlist), std::move(topology),
                          std::move(timing));
}

// A co-location bound below the minimum separable delay (1 on a row
// topology): R2 must merge the pair.
PartitionProblem make_r2_problem() {
  Netlist netlist("r2");
  const auto a = netlist.add_component("a", 1.0);
  const auto b = netlist.add_component("b", 1.0);
  const auto c = netlist.add_component("c", 1.0);
  const auto d = netlist.add_component("d", 1.0);
  netlist.add_wires(a, b, 2);
  netlist.add_wires(b, c, 3);
  netlist.add_wires(c, d, 1);
  netlist.add_wires(a, d, 2);
  PartitionTopology topology =
      PartitionTopology::grid(1, 3, CostKind::kManhattan, 3.5);
  TimingConstraints timing(4);
  timing.add(a, b, 0.5);  // co-location: no distinct pair has delay <= 0.5
  timing.add(c, d, 2.0);
  return PartitionProblem(std::move(netlist), std::move(topology),
                          std::move(timing));
}

// Solve `problem` through presolve + brute force on the remainder and
// compare against brute force on the original: the lifted optimum must
// match the true constrained optimum exactly.
void expect_exact_via_presolve(const PartitionProblem& problem,
                               const PresolveOptions& options) {
  const ReducedProblem reduced = presolve(problem, options);
  const BruteForceResult oracle = brute_force_constrained(problem);
  ASSERT_TRUE(oracle.found);
  Assignment lifted;
  double objective = 0.0;
  if (reduced.rn_feasible) {
    lifted = reduced.lift.lift(reduced.rn_assignment);
    objective = reduced.rn_objective + reduced.lift.objective_offset;
  } else {
    const BruteForceResult remainder =
        brute_force_constrained(reduced.problem);
    ASSERT_TRUE(remainder.found);
    lifted = reduced.lift.lift(remainder.best);
    objective = remainder.value + reduced.lift.objective_offset;
  }
  EXPECT_TRUE(problem.is_feasible(lifted));
  EXPECT_NEAR(problem.objective(lifted), oracle.value, 1e-9);
  EXPECT_NEAR(objective, problem.objective(lifted), 1e-9);
}

TEST(PresolveRules, R0FixesForcedComponent) {
  const PartitionProblem problem = make_r0_problem();
  PresolveOptions options;
  options.rule_rn = false;
  const ReducedProblem reduced = presolve(problem, options);
  EXPECT_GE(reduced.stats.r0, 1);
  EXPECT_EQ(reduced.stats.components_removed,
            problem.num_components() - reduced.problem.num_components());
  // The fixed component must land on partition 0 after lifting.
  Assignment all_zero(reduced.problem.num_components(), 3);
  for (std::int32_t j = 0; j < reduced.problem.num_components(); ++j) {
    all_zero.set(j, 0);
  }
  EXPECT_EQ(reduced.lift.lift(all_zero)[0], 0);
  expect_exact_via_presolve(problem, options);
}

TEST(PresolveRules, R1EliminatesPendant) {
  const PartitionProblem problem = make_r1_problem();
  PresolveOptions options;
  options.rule_rn = false;
  // The pendant is 0.1 of a 4.0-capacity partition; loosen the size guard
  // so the rule may fire.
  options.r1_max_size_fraction = 0.2;
  const ReducedProblem reduced = presolve(problem, options);
  EXPECT_GE(reduced.stats.r1, 1);
  expect_exact_via_presolve(problem, options);
}

TEST(PresolveRules, R2MergesCoLocatedPair) {
  const PartitionProblem problem = make_r2_problem();
  PresolveOptions options;
  options.rule_rn = false;
  const ReducedProblem reduced = presolve(problem, options);
  EXPECT_GE(reduced.stats.r2, 1);
  // Any lifted solution keeps the pair co-located.
  Assignment reduced_solution(reduced.problem.num_components(), 3);
  for (std::int32_t j = 0; j < reduced.problem.num_components(); ++j) {
    reduced_solution.set(j, j % 3);
  }
  const Assignment lifted = reduced.lift.lift(reduced_solution);
  EXPECT_EQ(lifted[0], lifted[1]);
  expect_exact_via_presolve(problem, options);
}

TEST(PresolveRules, RnSolvesTinyRemainderExactly) {
  test::TinySpec spec;
  spec.num_components = 4;
  spec.num_partitions = 3;
  spec.seed = 11;
  const PartitionProblem problem = test::make_tiny_problem(spec);
  const BruteForceResult oracle = brute_force_constrained(problem);
  const ReducedProblem reduced = presolve(problem);
  ASSERT_TRUE(reduced.rn_solved);
  ASSERT_EQ(reduced.rn_feasible, oracle.found);
  if (oracle.found) {
    const Assignment lifted = reduced.lift.lift(reduced.rn_assignment);
    EXPECT_TRUE(problem.is_feasible(lifted));
    EXPECT_NEAR(reduced.rn_objective + reduced.lift.objective_offset,
                oracle.value, 1e-9);
  }
}

TEST(PresolveRules, ProvenInfeasibleWhenComponentFitsNowhere) {
  Netlist netlist("nofit");
  netlist.add_component("huge", 100.0);
  netlist.add_component("a", 1.0);
  netlist.add_wires(0, 1, 1);
  PartitionTopology topology =
      PartitionTopology::grid(1, 2, CostKind::kManhattan, 5.0);
  const PartitionProblem problem(std::move(netlist), std::move(topology),
                                 TimingConstraints(2));
  const ReducedProblem reduced = presolve(problem);
  EXPECT_TRUE(reduced.stats.proven_infeasible);
  // Identity reduction: the solver still runs and reports infeasibility.
  EXPECT_TRUE(reduced.identity());
}

TEST(PresolveRules, DisabledReturnsIdentity) {
  const PartitionProblem problem = make_r0_problem();
  PresolveOptions options;
  options.enabled = false;
  const ReducedProblem reduced = presolve(problem, options);
  EXPECT_TRUE(reduced.identity());
  EXPECT_EQ(reduced.stats.components_removed, 0);
  EXPECT_EQ(reduced.problem.num_components(), problem.num_components());
}

TEST(PresolveRules, FixedPointOnRandomTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    test::TinySpec spec;
    spec.num_components = 6;
    spec.num_partitions = 3;
    spec.seed = seed;
    const PartitionProblem problem = test::make_tiny_problem(spec);
    const BruteForceResult oracle = brute_force_constrained(problem);
    if (!oracle.found) continue;
    PresolveOptions options;
    options.rule_rn = false;  // exercise the reduce-then-solve path
    SCOPED_TRACE("seed " + std::to_string(seed));
    expect_exact_via_presolve(problem, options);
  }
}

TEST(PresolveLift, RestrictThenLiftRoundTrips) {
  const PartitionProblem problem = make_r2_problem();
  PresolveOptions options;
  options.rule_rn = false;
  const ReducedProblem reduced = presolve(problem, options);
  ASSERT_FALSE(reduced.identity());
  const BruteForceResult oracle = brute_force_constrained(problem);
  ASSERT_TRUE(oracle.found);
  const Assignment restricted = reduced.lift.restrict_to_reduced(oracle.best);
  EXPECT_EQ(restricted.num_components(), reduced.problem.num_components());
  const Assignment lifted = reduced.lift.lift(restricted);
  // Surviving representatives keep the oracle's partitions.
  for (std::size_t r = 0; r < reduced.lift.orig_of.size(); ++r) {
    EXPECT_EQ(lifted[reduced.lift.orig_of[r]],
              oracle.best[reduced.lift.orig_of[r]]);
  }
}

// The standard benchmark families have no reducible structure by design:
// presolve must detect that and leave the solve bit-identical.
TEST(PresolveIdentity, StandardCircuitsDoNotReduce) {
  const auto instance = make_circuit(*find_preset("cktb"));
  const ReducedProblem reduced = presolve(instance.problem);
  EXPECT_EQ(reduced.stats.components_removed, 0);
  EXPECT_TRUE(reduced.identity());
}

TEST(PresolveIdentity, SolveQbpBitIdenticalOnOffWhenNothingReduces) {
  const auto instance = make_circuit(*find_preset("cktb"));
  const auto initial = make_initial(instance.problem,
                                    InitialStrategy::kQbpZeroWireCost, 1993);
  BurkardOptions off;
  off.iterations = 12;
  BurkardOptions on = off;
  on.presolve.enabled = true;
  const BurkardResult result_off =
      solve_qbp(instance.problem, initial.assignment, off);
  const BurkardResult result_on =
      solve_qbp(instance.problem, initial.assignment, on);
  EXPECT_EQ(result_off.best_penalized, result_on.best_penalized);
  EXPECT_EQ(result_off.found_feasible, result_on.found_feasible);
  if (result_off.found_feasible) {
    EXPECT_EQ(result_off.best_feasible_objective,
              result_on.best_feasible_objective);
    for (std::int32_t j = 0; j < instance.problem.num_components(); ++j) {
      EXPECT_EQ(result_off.best_feasible[j], result_on.best_feasible[j]);
    }
  }
  ASSERT_EQ(result_off.history.size(), result_on.history.size());
  for (std::size_t k = 0; k < result_off.history.size(); ++k) {
    EXPECT_EQ(result_off.history[k], result_on.history[k]);
  }
}

// Reducible instances: presolve-on must still produce valid (shadow-checked)
// solutions, just faster.  Uses the bench family built for exactly this.
TEST(PresolveReducing, BenchFamilyReducesAndSolvesValidly) {
  const PartitionProblem problem = make_presolve_problem(200, 42);
  const ReducedProblem reduced = presolve(problem);
  EXPECT_GT(reduced.stats.r0, 0);
  EXPECT_GT(reduced.stats.r1, 0);
  EXPECT_GT(reduced.stats.r2, 0);
  EXPECT_EQ(reduced.stats.components_removed,
            reduced.stats.r0 + reduced.stats.r1 + reduced.stats.r2);
  EXPECT_EQ(reduced.problem.num_components(),
            problem.num_components() - reduced.stats.components_removed);

  const auto initial =
      make_initial(problem, InitialStrategy::kQbpZeroWireCost, 7);
  BurkardOptions options;
  options.iterations = 20;
  options.presolve.enabled = true;
  const bool was_validating = validation_enabled();
  set_validation_enabled(true);  // shadow-check the lift on the original
  const BurkardResult result = solve_qbp(problem, initial.assignment, options);
  set_validation_enabled(was_validating);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_TRUE(problem.is_feasible(result.best_feasible));
  EXPECT_NEAR(problem.objective(result.best_feasible),
              result.best_feasible_objective, 1e-6);
}

TEST(PresolveReducing, MultilevelLiftsReducedSolve) {
  const PartitionProblem problem = make_presolve_problem(200, 42);
  const auto initial =
      make_initial(problem, InitialStrategy::kQbpZeroWireCost, 7);
  MultilevelOptions options;
  options.presolve.enabled = true;
  options.coarse_solver.iterations = 10;
  options.refine_solver.iterations = 10;
  const MultilevelResult result =
      solve_qbp_multilevel(problem, initial.assignment, options);
  ASSERT_TRUE(result.finest.found_feasible);
  EXPECT_EQ(result.finest.best_feasible.num_components(),
            problem.num_components());
  EXPECT_TRUE(problem.is_feasible(result.finest.best_feasible));
}

// --- special-cases cross-check (satellite): the reducer must agree with the
// dedicated special-case solvers on the instances they already handle.

TEST(PresolveSpecialCases, LapOptimumMatchesRnReduction) {
  // 4 x 4 LAP: unit sizes/capacities, PP(1, 0).  RN covers the whole
  // instance, so presolve must reproduce the exact LAP optimum.
  Matrix<double> cost(4, 4, 0.0);
  const double values[4][4] = {{4, 2, 5, 7},
                               {8, 3, 10, 8},
                               {12, 5, 4, 5},
                               {6, 3, 7, 14}};
  for (std::int32_t i = 0; i < 4; ++i) {
    for (std::int32_t j = 0; j < 4; ++j) cost(i, j) = values[i][j];
  }
  const LapResult lap = solve_lap(cost);
  const PartitionProblem problem = make_lap_problem(cost).normalized();
  const ReducedProblem reduced = presolve(problem);
  ASSERT_TRUE(reduced.rn_solved);
  ASSERT_TRUE(reduced.rn_feasible);
  EXPECT_NEAR(reduced.rn_objective + reduced.lift.objective_offset, lap.cost,
              1e-9);
}

TEST(PresolveSpecialCases, GapForcedItemMatchesOracleFixing) {
  // Item 0 fits only agent 0 by size; R0 must fix it exactly where every
  // feasible GAP solution (hence the brute-force optimum) must place it.
  Matrix<double> cost(3, 3, 0.0);
  const double values[3][3] = {{9, 1, 2}, {2, 8, 3}, {3, 2, 7}};
  for (std::int32_t i = 0; i < 3; ++i) {
    for (std::int32_t j = 0; j < 3; ++j) cost(i, j) = values[i][j];
  }
  const std::vector<double> sizes = {5.0, 1.0, 1.0};
  const std::vector<double> capacities = {6.0, 1.5, 1.5};
  const PartitionProblem problem =
      make_gap_problem(cost, sizes, capacities).normalized();

  PresolveOptions options;
  options.rule_rn = false;
  const ReducedProblem reduced = presolve(problem, options);
  EXPECT_GE(reduced.stats.r0, 1);
  ASSERT_FALSE(reduced.identity());

  const BruteForceResult oracle = brute_force_constrained(problem);
  ASSERT_TRUE(oracle.found);
  EXPECT_EQ(oracle.best[0], 0);  // the forced fixing, per the oracle
  const BruteForceResult remainder = brute_force_constrained(reduced.problem);
  ASSERT_TRUE(remainder.found);
  const Assignment lifted = reduced.lift.lift(remainder.best);
  EXPECT_EQ(lifted[0], 0);  // ... and per the reducer
  EXPECT_NEAR(remainder.value + reduced.lift.objective_offset, oracle.value,
              1e-9);
}

// --- pipeline integration: normalize -> presolve -> solve -> lift ->
// validate, shared across portfolio starts.

TEST(PresolvePipeline, PortfolioRunLiftsAndValidates) {
  const PartitionProblem problem = make_presolve_problem(200, 42);
  engine::PipelineOptions options;
  options.portfolio.seed = 7;
  options.portfolio.threads = 2;
  options.portfolio.validate = true;
  const engine::SolvePipeline pipeline(problem, options);
  EXPECT_TRUE(pipeline.reduced());
  EXPECT_LT(pipeline.reduced_problem().num_components(),
            problem.num_components());
  BurkardOptions solver_options;
  solver_options.iterations = 15;
  const engine::BurkardSolver solver(solver_options);
  const engine::PipelineResult result = pipeline.run(solver, 3);
  ASSERT_GE(result.portfolio.best_start, 0);
  EXPECT_GT(result.presolve.components_removed, 0);
  const engine::SolverResult& best = result.portfolio.best;
  EXPECT_EQ(best.best.num_components(), problem.num_components());
  ASSERT_TRUE(best.found_feasible);
  EXPECT_TRUE(problem.is_feasible(best.best_feasible));
}

TEST(PresolvePipeline, DeterministicAcrossThreadCounts) {
  const PartitionProblem problem = make_presolve_problem(200, 42);
  BurkardOptions solver_options;
  solver_options.iterations = 10;
  const engine::BurkardSolver solver(solver_options);
  std::vector<double> objectives;
  for (const std::int32_t threads : {1, 4}) {
    engine::PipelineOptions options;
    options.portfolio.seed = 3;
    options.portfolio.threads = threads;
    const engine::SolvePipeline pipeline(problem, options);
    const engine::PipelineResult result = pipeline.run(solver, 4);
    ASSERT_GE(result.portfolio.best_start, 0);
    objectives.push_back(result.portfolio.best.best_penalized);
  }
  EXPECT_EQ(objectives[0], objectives[1]);
}

TEST(PresolvePipeline, OffModeMatchesPlainPortfolio) {
  const auto instance = make_circuit(*find_preset("cktb"));
  BurkardOptions solver_options;
  solver_options.iterations = 8;
  const engine::BurkardSolver solver(solver_options);
  engine::PipelineOptions pipeline_options;
  pipeline_options.presolve.enabled = false;
  pipeline_options.portfolio.seed = 5;
  const engine::SolvePipeline pipeline(instance.problem, pipeline_options);
  const engine::PipelineResult piped = pipeline.run(solver, 2);

  engine::PortfolioOptions portfolio_options;
  portfolio_options.seed = 5;
  const engine::PortfolioResult plain =
      engine::Portfolio(portfolio_options).run(instance.problem, solver, 2);
  ASSERT_GE(piped.portfolio.best_start, 0);
  EXPECT_EQ(piped.portfolio.best_start, plain.best_start);
  EXPECT_EQ(piped.portfolio.best.best_penalized, plain.best.best_penalized);
}

}  // namespace
}  // namespace qbp
