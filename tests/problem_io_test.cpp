#include <gtest/gtest.h>

#include <sstream>

#include "core/problem_io.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

// --------------------------------------------------------- round trips ----

TEST(ProblemIo, GridProblemRoundTrip) {
  const auto original = test::make_paper_example();
  std::ostringstream out;
  write_problem(out, original);

  PartitionProblem parsed;
  std::istringstream in(out.str());
  const auto result = read_problem(in, parsed);
  ASSERT_TRUE(result.ok) << result.message;

  EXPECT_EQ(parsed.num_components(), 3);
  EXPECT_EQ(parsed.num_partitions(), 4);
  EXPECT_EQ(parsed.netlist().bundles(), original.netlist().bundles());
  EXPECT_EQ(parsed.topology().wire_cost(), original.topology().wire_cost());
  EXPECT_EQ(parsed.topology().delay(), original.topology().delay());
  EXPECT_EQ(parsed.topology().capacities(), original.topology().capacities());
  EXPECT_EQ(parsed.timing().matrix(), original.timing().matrix());
  // The grid header survives the round trip (written as `topology grid`).
  EXPECT_NE(out.str().find("topology grid 2 2 manhattan"), std::string::npos);
}

class ProblemIoSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProblemIoSweep, RandomProblemRoundTripPreservesSemantics) {
  auto spec = test::TinySpec{};
  spec.with_linear_term = true;
  spec.seed = GetParam();
  const auto original = test::make_tiny_problem(spec);

  std::ostringstream out;
  write_problem(out, original);
  PartitionProblem parsed;
  std::istringstream in(out.str());
  const auto result = read_problem(in, parsed);
  ASSERT_TRUE(result.ok) << result.message;

  // Semantics: identical objective and feasibility on random assignments.
  Rng rng(GetParam() ^ 0xfeed);
  for (int trial = 0; trial < 20; ++trial) {
    const auto assignment = test::random_complete(
        original.num_components(), original.num_partitions(), rng);
    // The text format stores 6 decimals; error accumulates over ~N entries.
    EXPECT_NEAR(parsed.objective(assignment), original.objective(assignment),
                1e-4);
    EXPECT_EQ(parsed.is_feasible(assignment), original.is_feasible(assignment));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProblemIoSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(ProblemIo, CustomTopologyRoundTrip) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 2.0);
  netlist.add_wires(0, 1, 4);
  auto b = Matrix<double>::from_rows({{0, 3}, {5, 0}});   // asymmetric B
  auto d = Matrix<double>::from_rows({{0, 1}, {2, 0}});   // asymmetric D
  const PartitionProblem original(
      std::move(netlist),
      PartitionTopology::custom(b, d, {4.0, 4.0}), TimingConstraints(2));

  std::ostringstream out;
  write_problem(out, original);
  EXPECT_NE(out.str().find("topology custom 2"), std::string::npos);

  PartitionProblem parsed;
  std::istringstream in(out.str());
  const auto result = read_problem(in, parsed);
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_EQ(parsed.topology().wire_cost(), b);
  EXPECT_EQ(parsed.topology().delay(), d);
}

TEST(ProblemIo, AlphaBetaSurvive) {
  auto spec = test::TinySpec{};
  spec.with_linear_term = true;
  const auto base = test::make_tiny_problem(spec);
  const PartitionProblem original(base.netlist(), base.topology(),
                                  base.timing(), base.linear_cost_matrix(),
                                  2.0, 0.5);
  std::ostringstream out;
  write_problem(out, original);
  PartitionProblem parsed;
  std::istringstream in(out.str());
  ASSERT_TRUE(read_problem(in, parsed).ok);
  EXPECT_DOUBLE_EQ(parsed.alpha(), 2.0);
  EXPECT_DOUBLE_EQ(parsed.beta(), 0.5);
}

// --------------------------------------------------------- net parsing ----

TEST(ProblemIo, NetLinesExpandAsClique) {
  std::istringstream in(
      "problem nets\n"
      "topology grid 1 2 manhattan\n"
      "capacities 10 10\n"
      "component a 1\ncomponent b 1\ncomponent c 1\n"
      "net 2 0 1 2\n");
  PartitionProblem parsed;
  ASSERT_TRUE(read_problem(in, parsed).ok);
  EXPECT_EQ(parsed.netlist().connection_matrix().value_or(0, 1, 0), 2);
  EXPECT_EQ(parsed.netlist().connection_matrix().value_or(0, 2, 0), 2);
  EXPECT_EQ(parsed.netlist().connection_matrix().value_or(1, 2, 0), 2);
}

TEST(ProblemIo, NetstarLinesExpandAsStar) {
  std::istringstream in(
      "problem nets\n"
      "topology grid 1 2 manhattan\n"
      "capacities 10 10\n"
      "component a 1\ncomponent b 1\ncomponent c 1\n"
      "netstar 1 0 1 2\n");
  PartitionProblem parsed;
  ASSERT_TRUE(read_problem(in, parsed).ok);
  EXPECT_EQ(parsed.netlist().connection_matrix().value_or(0, 1, 0), 1);
  EXPECT_EQ(parsed.netlist().connection_matrix().value_or(0, 2, 0), 1);
  EXPECT_EQ(parsed.netlist().connection_matrix().value_or(1, 2, 0), 0);
}

// ------------------------------------------------------------- errors ----

TEST(ProblemIo, MissingTopologyRejected) {
  std::istringstream in("problem x\ncomponent a 1\n");
  PartitionProblem parsed;
  const auto result = read_problem(in, parsed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("topology"), std::string::npos);
}

TEST(ProblemIo, MissingCapacitiesRejected) {
  std::istringstream in("topology grid 1 2 manhattan\ncomponent a 1\n");
  PartitionProblem parsed;
  EXPECT_FALSE(read_problem(in, parsed).ok);
}

TEST(ProblemIo, IncompleteCustomMatrixRejected) {
  std::istringstream in(
      "topology custom 2\n"
      "bcost 0 0 1\n"
      "delay 0 0 1\n"
      "capacities 1 1\n"
      "component a 0.5\n");
  PartitionProblem parsed;
  const auto result = read_problem(in, parsed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("row 1"), std::string::npos);
}

TEST(ProblemIo, WireBeforeComponentsRejected) {
  std::istringstream in(
      "topology grid 1 2 manhattan\ncapacities 5 5\nwire 0 1 1\n");
  PartitionProblem parsed;
  EXPECT_FALSE(read_problem(in, parsed).ok);
}

TEST(ProblemIo, BadConstraintRejected) {
  std::istringstream in(
      "topology grid 1 2 manhattan\ncapacities 5 5\n"
      "component a 1\ncomponent b 1\nconstraint 0 0 1\n");
  PartitionProblem parsed;
  EXPECT_FALSE(read_problem(in, parsed).ok);
}

TEST(ProblemIo, NegativeLinearRejected) {
  std::istringstream in(
      "topology grid 1 2 manhattan\ncapacities 5 5\n"
      "component a 1\nlinear 0 0 -3\n");
  PartitionProblem parsed;
  EXPECT_FALSE(read_problem(in, parsed).ok);
}

TEST(ProblemIo, OverfullProblemRejectedByValidate) {
  std::istringstream in(
      "topology grid 1 2 manhattan\ncapacities 1 1\ncomponent a 5\n");
  PartitionProblem parsed;
  const auto result = read_problem(in, parsed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("inconsistent"), std::string::npos);
}

// Service-boundary hardening: malformed, truncated or hostile input must
// produce a descriptive ParseResult -- never an abort, uncaught throw, or
// multi-gigabyte allocation.  qbpartd feeds untrusted bytes through here.

TEST(ProblemIo, EveryTruncationOfAValidFileFailsGracefully) {
  const auto original = test::make_tiny_problem({.seed = 7});
  std::ostringstream out;
  write_problem(out, original);
  const std::string full = out.str();

  // Any strict prefix is missing at least the trailing structure (wires /
  // constraints come last but capacities, components, or the topology are
  // gone for shorter cuts); none may crash and all must carry a message.
  for (std::size_t cut = 0; cut < full.size(); cut += full.size() / 37 + 1) {
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    std::istringstream in(full.substr(0, cut));
    PartitionProblem parsed;
    const auto result = read_problem(in, parsed);
    if (!result.ok) {
      EXPECT_FALSE(result.message.empty());
    } else {
      // A cut can only succeed once every section is complete; the parsed
      // problem must then be internally consistent.
      EXPECT_TRUE(parsed.validate().empty());
      EXPECT_GT(parsed.num_components(), 0);
    }
  }
}

TEST(ProblemIo, EmptyAndComponentFreeInputRejected) {
  PartitionProblem parsed;
  std::istringstream empty("");
  EXPECT_FALSE(read_problem(empty, parsed).ok);

  // Topology + capacities but zero components: the classic truncation shape.
  std::istringstream headless("topology grid 1 2 manhattan\ncapacities 5 5\n");
  const auto result = read_problem(headless, parsed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("no components"), std::string::npos);
}

TEST(ProblemIo, NegativeSizesRejected) {
  PartitionProblem parsed;
  std::istringstream size(
      "topology grid 1 2 manhattan\ncapacities 5 5\ncomponent a -1\n");
  EXPECT_FALSE(read_problem(size, parsed).ok);

  std::istringstream topo("topology custom -3\n");
  EXPECT_FALSE(read_problem(topo, parsed).ok);

  std::istringstream grid("topology grid -1 2 manhattan\n");
  EXPECT_FALSE(read_problem(grid, parsed).ok);

  std::istringstream capacity(
      "topology grid 1 2 manhattan\ncapacities -5 5\ncomponent a 1\n");
  EXPECT_FALSE(read_problem(capacity, parsed).ok);
}

TEST(ProblemIo, OutOfRangePartitionIndicesRejected) {
  PartitionProblem parsed;
  // `linear` partition index beyond M.
  std::istringstream linear(
      "topology grid 1 2 manhattan\ncapacities 5 5\n"
      "component a 1\nlinear 2 0 1.0\n");
  const auto result = read_problem(linear, parsed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("linear"), std::string::npos);

  // `bcost` row index beyond M.
  std::istringstream row(
      "topology custom 2\nbcost 2 0 1\n");
  EXPECT_FALSE(read_problem(row, parsed).ok);

  // Constraint endpoint beyond N.
  std::istringstream constraint(
      "topology grid 1 2 manhattan\ncapacities 5 5\n"
      "component a 1\ncomponent b 1\nconstraint 0 7 1\n");
  EXPECT_FALSE(read_problem(constraint, parsed).ok);
}

TEST(ProblemIo, HostileResourceRequestsRejected) {
  PartitionProblem parsed;
  // 1e9 partitions would allocate ~16 exabytes of matrices.
  std::istringstream custom("topology custom 1000000000\n");
  const auto result = read_problem(custom, parsed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("limit"), std::string::npos);

  std::istringstream grid("topology grid 100000 100000 manhattan\n");
  EXPECT_FALSE(read_problem(grid, parsed).ok);

  // Wire multiplicity that would overflow the int32 accumulation.
  std::istringstream wire(
      "topology grid 1 2 manhattan\ncapacities 5 5\n"
      "component a 1\ncomponent b 1\nwire 0 1 99999999999\n");
  EXPECT_FALSE(read_problem(wire, parsed).ok);
}

// -------------------------------------------------------- assignments ----

TEST(AssignmentIo, RoundTrip) {
  Assignment assignment(4, 3);
  assignment.set(0, 2);
  assignment.set(1, 0);
  assignment.set(2, 1);
  assignment.set(3, 2);
  std::ostringstream out;
  write_assignment(out, assignment);

  Assignment parsed;
  std::istringstream in(out.str());
  const auto result = read_assignment(in, 4, 3, parsed);
  ASSERT_TRUE(result.ok) << result.message;
  EXPECT_EQ(parsed, assignment);
}

TEST(AssignmentIo, RejectsDuplicateAssignment) {
  std::istringstream in("assign 0 1\nassign 0 2\nassign 1 0\n");
  Assignment parsed;
  EXPECT_FALSE(read_assignment(in, 2, 3, parsed).ok);
}

TEST(AssignmentIo, RejectsMissingComponent) {
  std::istringstream in("assign 0 1\n");
  Assignment parsed;
  const auto result = read_assignment(in, 2, 3, parsed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("misses"), std::string::npos);
}

TEST(AssignmentIo, RejectsOutOfRange) {
  std::istringstream in("assign 0 9\n");
  Assignment parsed;
  EXPECT_FALSE(read_assignment(in, 1, 3, parsed).ok);
}

}  // namespace
}  // namespace qbp
