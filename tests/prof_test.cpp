// util/prof: the phase profiler under its four contract corners --
// disabled scopes record nothing, nested scopes bucket independently,
// thread-local accumulation merges across a real portfolio pool, and phase
// reports round-trip through JSON.
//
// The profiler is process-global state; every test starts from
// set_enabled(false) + reset() and restores that on exit so test order
// never matters.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/burkard.hpp"
#include "engine/engine.hpp"
#include "test_support.hpp"
#include "util/prof.hpp"
#include "util/rng.hpp"

namespace qbp::prof {
namespace {

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

void spin_for(std::chrono::microseconds at_least) {
  const auto until = std::chrono::steady_clock::now() + at_least;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST_F(ProfTest, DisabledScopesRecordNothing) {
  ASSERT_FALSE(enabled());
  for (int i = 0; i < 1000; ++i) {
    QBP_PROF_SCOPE("prof_test.disabled");
    spin_for(std::chrono::microseconds(1));
  }
  const PhaseReport report = snapshot();
  EXPECT_EQ(report.find("prof_test.disabled"), nullptr);
  EXPECT_EQ(report.seconds("prof_test.disabled"), 0.0);
}

TEST_F(ProfTest, EnabledAtEntryDecidesRecording) {
  // The enabled flag is sampled at scope entry: a scope opened while
  // disabled stays inert even if profiling turns on before it closes, and a
  // scope opened while enabled records even if profiling turns off.
  {
    QBP_PROF_SCOPE("prof_test.entry_disabled");
    set_enabled(true);
  }
  EXPECT_EQ(snapshot().find("prof_test.entry_disabled"), nullptr);

  {
    QBP_PROF_SCOPE("prof_test.entry_enabled");
    set_enabled(false);
  }
  const PhaseStat* stat = snapshot().find("prof_test.entry_enabled");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 1);
}

TEST_F(ProfTest, NestedScopesBucketIndependently) {
  set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    QBP_PROF_SCOPE("prof_test.outer");
    spin_for(std::chrono::microseconds(200));
    {
      QBP_PROF_SCOPE("prof_test.inner");
      spin_for(std::chrono::microseconds(200));
    }
  }
  const PhaseReport report = snapshot();
  const PhaseStat* outer = report.find("prof_test.outer");
  const PhaseStat* inner = report.find("prof_test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 3);
  EXPECT_EQ(inner->count, 3);
  // A parent's seconds INCLUDE its instrumented children (self time is
  // parent - child, computed by the reader).
  EXPECT_GE(outer->seconds, inner->seconds);
  EXPECT_GT(inner->seconds, 0.0);
}

TEST_F(ProfTest, ResetZeroesBucketsButKeepsNames) {
  set_enabled(true);
  {
    QBP_PROF_SCOPE("prof_test.reset_me");
  }
  ASSERT_NE(snapshot().find("prof_test.reset_me"), nullptr);
  reset();
  EXPECT_EQ(snapshot().find("prof_test.reset_me"), nullptr);
  // The site's interned id stays valid: recording after reset works.
  {
    QBP_PROF_SCOPE("prof_test.reset_me");
  }
  const PhaseStat* stat = snapshot().find("prof_test.reset_me");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 1);
}

TEST_F(ProfTest, ThreadBucketsMergeIntoOneSnapshot) {
  set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kIterations = 50;
  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([] {
      for (int i = 0; i < kIterations; ++i) {
        QBP_PROF_SCOPE("prof_test.worker");
        spin_for(std::chrono::microseconds(10));
      }
    });
  }
  for (auto& thread : pool) thread.join();
  // The workers have exited: their buckets folded into the retired totals,
  // and the merged snapshot sees every sample.
  const PhaseStat* stat = snapshot().find("prof_test.worker");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, kThreads * kIterations);
  EXPECT_GT(stat->seconds, 0.0);
}

TEST_F(ProfTest, PortfolioPoolAccumulatesAcrossWorkerThreads) {
  set_enabled(true);
  const PartitionProblem problem = test::make_tiny_problem(
      {.num_components = 12, .num_partitions = 4, .seed = 42});
  BurkardOptions options;
  options.iterations = 4;
  const engine::BurkardSolver solver(options);

  engine::PortfolioOptions portfolio_options;
  portfolio_options.seed = 7;
  portfolio_options.threads = 2;
  constexpr std::int32_t kStarts = 6;
  const auto result =
      engine::Portfolio(portfolio_options).run(problem, solver, kStarts);
  ASSERT_EQ(result.starts_run, kStarts);

  const PhaseReport report = snapshot();
  const PhaseStat* starts = report.find("portfolio.start");
  ASSERT_NE(starts, nullptr);
  EXPECT_EQ(starts->count, kStarts);
  // The solver's instrumented inner phases surfaced through the same merge.
  const PhaseStat* step6 = report.find("burkard.step6_gap");
  ASSERT_NE(step6, nullptr);
  EXPECT_GT(step6->count, 0);
  EXPECT_LE(report.seconds("burkard.step6_gap"),
            report.seconds("portfolio.start"));
}

TEST_F(ProfTest, SinceReportsClampedDeltas) {
  set_enabled(true);
  {
    QBP_PROF_SCOPE("prof_test.since");
  }
  const PhaseReport before = snapshot();
  for (int i = 0; i < 2; ++i) {
    QBP_PROF_SCOPE("prof_test.since");
    spin_for(std::chrono::microseconds(50));
  }
  const PhaseReport delta = snapshot().since(before);
  const PhaseStat* stat = delta.find("prof_test.since");
  ASSERT_NE(stat, nullptr);
  EXPECT_EQ(stat->count, 2);
  // A phase that did not move since `before` drops out of the delta.
  EXPECT_EQ(before.since(before).find("prof_test.since"), nullptr);
}

TEST_F(ProfTest, JsonRoundTripPreservesTheReport) {
  set_enabled(true);
  for (int i = 0; i < 5; ++i) {
    QBP_PROF_SCOPE("prof_test.json_a");
    QBP_PROF_SCOPE("prof_test.json_b");
    spin_for(std::chrono::microseconds(20));
  }
  const PhaseReport report = snapshot();
  ASSERT_FALSE(report.empty());

  const json::Value encoded = to_json(report);
  const auto decoded = from_json(encoded);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, report);

  // And through a full serialize/parse cycle, as bench_runner stores it.
  json::Value reparsed;
  const auto parse_result = json::parse(encoded.dump(), reparsed);
  ASSERT_TRUE(parse_result.ok) << parse_result.message;
  const auto decoded_again = from_json(reparsed);
  ASSERT_TRUE(decoded_again.has_value());
  EXPECT_EQ(*decoded_again, report);
}

TEST_F(ProfTest, FromJsonRejectsWrongShapes) {
  EXPECT_FALSE(from_json(json::Value(3.0)).has_value());
  json::Value missing_count = json::Value::object();
  json::Value entry = json::Value::object();
  entry.set("seconds", 1.0);
  missing_count.set("phase", std::move(entry));
  EXPECT_FALSE(from_json(missing_count).has_value());
}

}  // namespace
}  // namespace qbp::prof
