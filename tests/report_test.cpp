#include <gtest/gtest.h>

#include "assign/gap.hpp"
#include "core/report.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

// -------------------------------------------------------------- report ----

TEST(Report, ObjectiveBreakdownConsistent) {
  auto spec = test::TinySpec{};
  spec.with_linear_term = true;
  spec.seed = 4;
  const auto problem = test::make_tiny_problem(spec);
  Rng rng(1);
  const auto assignment = test::random_complete(problem.num_components(),
                                                problem.num_partitions(), rng);
  const auto report = make_report(problem, assignment);
  EXPECT_NEAR(report.objective,
              problem.alpha() * report.linear_term +
                  problem.beta() * report.quadratic_term,
              1e-9);
  EXPECT_NEAR(report.objective, problem.objective(assignment), 1e-9);
  EXPECT_NEAR(report.quadratic_term, 2.0 * report.wirelength, 1e-9);
}

TEST(Report, PartitionUsageSumsToTotalSize) {
  const auto problem = test::make_tiny_problem({.seed = 5});
  Rng rng(2);
  const auto assignment = test::random_complete(problem.num_components(),
                                                problem.num_partitions(), rng);
  const auto report = make_report(problem, assignment);
  double usage_total = 0.0;
  std::int32_t component_total = 0;
  for (const auto& usage : report.partitions) {
    usage_total += usage.usage;
    component_total += usage.components;
  }
  EXPECT_NEAR(usage_total, problem.netlist().total_size(), 1e-9);
  EXPECT_EQ(component_total, problem.num_components());
}

TEST(Report, WireHistogramSumsToTotalWires) {
  const auto problem = test::make_tiny_problem({.seed = 6});
  Rng rng(3);
  const auto assignment = test::random_complete(problem.num_components(),
                                                problem.num_partitions(), rng);
  const auto report = make_report(problem, assignment);
  std::int64_t wires = 0;
  for (const auto count : report.wires_at_distance) wires += count;
  EXPECT_EQ(wires, problem.netlist().total_wires());
}

TEST(Report, TimingFieldsMatchCheckers) {
  const auto problem = test::make_tiny_problem({.seed = 7});
  Rng rng(4);
  for (int trial = 0; trial < 10; ++trial) {
    const auto assignment = test::random_complete(problem.num_components(),
                                                  problem.num_partitions(), rng);
    const auto report = make_report(problem, assignment);
    EXPECT_EQ(report.timing_ok, problem.satisfies_timing(assignment));
    EXPECT_EQ(report.timing_violations,
              problem.timing().violations(assignment, problem.topology()));
    EXPECT_EQ(report.capacity_ok, problem.satisfies_capacity(assignment));
    if (report.timing_violations > 0) {
      EXPECT_LT(report.min_timing_slack, 0.0);
    } else {
      EXPECT_GE(report.min_timing_slack, 0.0);
    }
  }
}

TEST(Report, RenderMentionsKeyFields) {
  const auto problem = test::make_paper_example(/*capacity=*/1.0);
  Assignment good(3, 4);
  good.set(0, 0);
  good.set(1, 1);
  good.set(2, 3);
  const auto report = make_report(problem, good);
  const auto text = to_string(report);
  EXPECT_NE(text.find("objective"), std::string::npos);
  EXPECT_NE(text.find("partition utilization"), std::string::npos);
  EXPECT_NE(text.find("wires by routing distance"), std::string::npos);
  EXPECT_EQ(text.find("VIOLATED"), std::string::npos);
}

TEST(Report, RenderFlagsViolations) {
  const auto problem = test::make_paper_example(/*capacity=*/1.0);
  Assignment crowded(3, 4);
  for (std::int32_t j = 0; j < 3; ++j) crowded.set(j, 0);
  const auto text = to_string(make_report(problem, crowded));
  EXPECT_NE(text.find("VIOLATED"), std::string::npos);
}

// ----------------------------------------------------- gap lower bound ----

class GapBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GapBoundSweep, LowerBoundsTheOptimum) {
  Rng rng(GetParam());
  const std::int32_t m = 3;
  const std::int32_t n = 7;
  GapProblem problem;
  problem.cost = Matrix<double>(m, n, 0.0);
  for (std::int32_t i = 0; i < m; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      problem.cost(i, j) = static_cast<double>(rng.next_int(0, 30));
    }
  }
  problem.sizes.resize(n);
  double total = 0.0;
  for (auto& size : problem.sizes) {
    size = rng.next_double(0.5, 2.0);
    total += size;
  }
  problem.capacities.assign(m, total / m * 1.5);

  // Exhaustive optimum.
  std::vector<std::int32_t> assignment(n, 0);
  double optimum = std::numeric_limits<double>::infinity();
  bool feasible = false;
  while (true) {
    if (gap_feasible(problem, assignment)) {
      feasible = true;
      optimum = std::min(optimum, gap_cost(problem, assignment));
    }
    std::int32_t j = 0;
    while (j < n) {
      if (++assignment[j] < m) break;
      assignment[j] = 0;
      ++j;
    }
    if (j == n) break;
  }
  if (!feasible) GTEST_SKIP();

  const double bound = gap_lower_bound(problem);
  EXPECT_LE(bound, optimum + 1e-6);
  // And it should not be vacuous: at least the capacity-free bound.
  double relax = 0.0;
  for (std::int32_t j = 0; j < n; ++j) {
    double best = std::numeric_limits<double>::infinity();
    for (std::int32_t i = 0; i < m; ++i) best = std::min(best, problem.cost(i, j));
    relax += best;
  }
  EXPECT_GE(bound, relax - 1e-6);
}

TEST_P(GapBoundSweep, HeuristicWithinReasonableGapOfBound) {
  Rng rng(GetParam() ^ 0xbeef);
  const std::int32_t m = 4;
  const std::int32_t n = 30;
  GapProblem problem;
  problem.cost = Matrix<double>(m, n, 0.0);
  for (std::int32_t i = 0; i < m; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      problem.cost(i, j) = static_cast<double>(rng.next_int(1, 40));
    }
  }
  problem.sizes.resize(n);
  double total = 0.0;
  for (auto& size : problem.sizes) {
    size = rng.next_double(0.5, 2.0);
    total += size;
  }
  problem.capacities.assign(m, total / m * 1.6);

  GapOptions options;
  options.swap_improvement = true;
  const auto result = solve_gap(problem, options);
  ASSERT_TRUE(result.feasible);
  const double bound = gap_lower_bound(problem, 120);
  EXPECT_GE(result.cost, bound - 1e-6);
  // Loose sanity margin: MTHG on benign random instances sits well within
  // 2x of the Lagrangian bound.
  EXPECT_LE(result.cost, std::max(bound * 2.0, bound + 40.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapBoundSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace qbp
