// Robustness: the text parsers must reject malformed input with clean
// line-numbered diagnostics and never crash -- exercised with structured
// mutations and random garbage.
#include <gtest/gtest.h>

#include <sstream>

#include "core/brute_force.hpp"
#include "core/problem_io.hpp"
#include "netlist/io.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

// --------------------------------------------------- structured damage ----

class DamagedProblemLine : public ::testing::TestWithParam<const char*> {};

TEST_P(DamagedProblemLine, RejectedWithDiagnostic) {
  std::ostringstream source;
  source << "problem p\n"
         << "topology grid 1 2 manhattan\n"
         << "capacities 10 10\n"
         << "component a 1\ncomponent b 1\n"
         << GetParam() << "\n";
  PartitionProblem parsed;
  std::istringstream in(source.str());
  const auto result = read_problem(in, parsed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("line"), std::string::npos) << result.message;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DamagedProblemLine,
    ::testing::Values("wire 0 1",                 // missing multiplicity
                      "wire 0 1 0",               // zero multiplicity
                      "wire 0 9 1",               // out-of-range endpoint
                      "wire 1 1 2",               // self loop
                      "component c -4",           // negative size
                      "component c",              // missing size
                      "constraint 0 1 -2",        // negative bound
                      "constraint 0 1 nan",       // non-numeric bound
                      "net 1 0",                  // single-pin net
                      "net 0 0 1",                // zero weight
                      "net 1 0 0",                // duplicate pin
                      "netstar 1 0 9",            // pin out of range
                      "linear 9 0 1",             // partition out of range
                      "linear 0 0 -1",            // negative cost
                      "capacities 1 2 3",         // wrong arity
                      "alpha -1",                 // negative scale
                      "topology grid 2 2 manhattan",  // duplicate topology
                      "frobnicate 1 2 3"));       // unknown keyword

class DamagedNetlistLine : public ::testing::TestWithParam<const char*> {};

TEST_P(DamagedNetlistLine, RejectedWithDiagnostic) {
  std::ostringstream source;
  source << "circuit c\ncomponent a 1\ncomponent b 1\n" << GetParam() << "\n";
  Netlist parsed;
  std::istringstream in(source.str());
  const auto result = read_netlist(in, parsed);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.message.find("line"), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(Cases, DamagedNetlistLine,
                         ::testing::Values("wire 0 1", "wire 0 1 -3",
                                           "wire 7 0 1", "component x 0",
                                           "circuit a b", "nonsense"));

// ------------------------------------------------------ random garbage ----

class GarbageSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GarbageSweep, ProblemParserSurvivesRandomBytes) {
  Rng rng(GetParam());
  std::string garbage;
  for (int k = 0; k < 2000; ++k) {
    const char c = static_cast<char>(rng.next_int(9, 126));
    garbage.push_back(c == 11 || c == 12 ? ' ' : c);
    if (rng.next_bool(0.05)) garbage.push_back('\n');
  }
  PartitionProblem parsed;
  std::istringstream in(garbage);
  const auto result = read_problem(in, parsed);
  // Virtually certain to be rejected; the property under test is "no crash,
  // coherent result flag".
  if (!result.ok) {
    EXPECT_FALSE(result.message.empty());
  }
}

TEST_P(GarbageSweep, NetlistParserSurvivesRandomTokens) {
  Rng rng(GetParam() ^ 0x5a5a);
  static const char* kWords[] = {"circuit", "component", "wire",  "1",
                                 "-3",      "x",         "1e309", "0.0",
                                 "#",       "net"};
  std::ostringstream source;
  for (int k = 0; k < 300; ++k) {
    source << kWords[rng.next_below(std::size(kWords))]
           << (rng.next_bool(0.3) ? "\n" : " ");
  }
  Netlist parsed;
  std::istringstream in(source.str());
  const auto result = read_netlist(in, parsed);
  if (!result.ok) {
    EXPECT_FALSE(result.message.empty());
  }
}

TEST_P(GarbageSweep, AssignmentParserSurvives) {
  Rng rng(GetParam() ^ 0x77);
  std::ostringstream source;
  for (int k = 0; k < 50; ++k) {
    source << "assign " << rng.next_int(-2, 8) << " " << rng.next_int(-2, 8)
           << "\n";
  }
  Assignment parsed;
  std::istringstream in(source.str());
  const auto result = read_assignment(in, 4, 3, parsed);
  // Out-of-range and duplicate lines must be flagged, never crash.
  EXPECT_FALSE(result.ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// ------------------------------------------------- semantic edge cases ----

TEST(EdgeCases, SingleComponentProblem) {
  Netlist netlist;
  netlist.add_component("only", 1.0);
  auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan, 2.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(1));
  const auto exact = brute_force_constrained(problem);
  ASSERT_TRUE(exact.found);
  EXPECT_DOUBLE_EQ(exact.value, 0.0);
  EXPECT_EQ(exact.feasible_count, 2);
}

TEST(EdgeCases, SinglePartitionProblem) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_wires(0, 1, 5);
  auto topo = PartitionTopology::grid(1, 1, CostKind::kManhattan, 5.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(2));
  const auto exact = brute_force_constrained(problem);
  ASSERT_TRUE(exact.found);
  EXPECT_DOUBLE_EQ(exact.value, 0.0);  // all intra-partition wires free
}

TEST(EdgeCases, WirelessProblemOptimizedByCapacityOnly) {
  Netlist netlist;
  netlist.add_component("a", 2.0);
  netlist.add_component("b", 2.0);
  auto topo = PartitionTopology::grid(1, 2, CostKind::kManhattan, 2.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(2));
  // Both components cannot share a partition; any split is optimal (cost 0).
  const auto exact = brute_force_constrained(problem);
  ASSERT_TRUE(exact.found);
  EXPECT_EQ(exact.feasible_count, 2);
  EXPECT_DOUBLE_EQ(exact.value, 0.0);
}

}  // namespace
}  // namespace qbp
