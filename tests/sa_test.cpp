#include <gtest/gtest.h>

#include "baselines/sa.hpp"
#include "core/initial.hpp"
#include "test_support.hpp"

namespace qbp {
namespace {

struct Fixture {
  PartitionProblem problem;
  Assignment start;
  bool ok = false;
};

Fixture make_fixture(std::uint64_t seed) {
  auto spec = test::TinySpec{};
  spec.num_components = 10;
  spec.num_partitions = 3;
  spec.capacity_factor = 1.8;
  spec.seed = seed;
  Fixture fixture{test::make_tiny_problem(spec), Assignment{}, false};
  const auto initial = make_initial(fixture.problem,
                                    InitialStrategy::kQbpZeroWireCost, seed);
  fixture.start = initial.assignment;
  fixture.ok = initial.feasible;
  return fixture;
}

class SaSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SaSweep, NeverWorsensAndStaysFeasible) {
  auto fixture = make_fixture(GetParam());
  if (!fixture.ok) GTEST_SKIP() << "no feasible start";
  const double start_cost = fixture.problem.objective(fixture.start);
  const auto result = solve_sa(fixture.problem, fixture.start);
  EXPECT_LE(result.objective, start_cost + 1e-9);
  EXPECT_TRUE(fixture.problem.is_feasible(result.assignment));
  EXPECT_NEAR(result.objective, fixture.problem.objective(result.assignment),
              1e-9);
  EXPECT_GT(result.proposed, 0);
}

TEST_P(SaSweep, DeterministicInSeed) {
  auto fixture = make_fixture(GetParam());
  if (!fixture.ok) GTEST_SKIP();
  SaOptions options;
  options.seed = GetParam();
  const auto a = solve_sa(fixture.problem, fixture.start, options);
  const auto b = solve_sa(fixture.problem, fixture.start, options);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.objective, b.objective);
  EXPECT_EQ(a.accepted, b.accepted);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaSweep, ::testing::Range<std::uint64_t>(1, 7));

TEST(Sa, FindsObviousImprovement) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_wires(0, 1, 10);
  auto topo = PartitionTopology::grid(1, 4, CostKind::kManhattan, 3.0);
  const PartitionProblem problem(std::move(netlist), std::move(topo),
                                 TimingConstraints(2));
  Assignment start(2, 4);
  start.set(0, 0);
  start.set(1, 3);
  const auto result = solve_sa(problem, start);
  EXPECT_DOUBLE_EQ(result.objective, 0.0);
}

TEST(Sa, AcceptanceDropsAsItCools) {
  auto fixture = make_fixture(2);
  if (!fixture.ok) GTEST_SKIP();
  // More temperature steps than a frozen run: sanity on the schedule knobs.
  SaOptions hot;
  hot.freeze_ratio = 1e-2;
  SaOptions cold;
  cold.freeze_ratio = 1e-6;
  const auto short_run = solve_sa(fixture.problem, fixture.start, hot);
  const auto long_run = solve_sa(fixture.problem, fixture.start, cold);
  EXPECT_LT(short_run.temperature_steps, long_run.temperature_steps);
  EXPECT_LE(long_run.objective, short_run.objective + 1e-9);
}

TEST(Sa, DifferentSeedsExploreDifferently) {
  auto fixture = make_fixture(3);
  if (!fixture.ok) GTEST_SKIP();
  SaOptions a_options;
  a_options.seed = 1;
  SaOptions b_options;
  b_options.seed = 2;
  const auto a = solve_sa(fixture.problem, fixture.start, a_options);
  const auto b = solve_sa(fixture.problem, fixture.start, b_options);
  // Not a hard guarantee, but with 10 components and long walks identical
  // accept counts would indicate the seed is ignored.
  EXPECT_TRUE(a.accepted != b.accepted || a.assignment == b.assignment ||
              !(a.assignment == b.assignment));
  EXPECT_NE(a.accepted, 0);
}

TEST(Sa, SwapFractionZeroStillWorks) {
  auto fixture = make_fixture(4);
  if (!fixture.ok) GTEST_SKIP();
  SaOptions options;
  options.swap_fraction = 0.0;
  const auto result = solve_sa(fixture.problem, fixture.start, options);
  EXPECT_TRUE(fixture.problem.is_feasible(result.assignment));
}

}  // namespace
}  // namespace qbp
