// End-to-end tests for the qbpartd service layer: protocol round-trips,
// queue ordering, the server lifecycle (submit -> result, deadlines,
// cancellation, backpressure, drain), determinism across worker counts,
// and the metrics registry.
//
// The server is exercised in-process: handle_line() with a collecting sink
// is exactly the pipe-mode serve loop minus the fd plumbing, and keeps the
// tests free of process management.  ServerOptions::autostart = false lets
// a test stage every submission before any worker can pop, making
// completion order assertions deterministic.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/problem_io.hpp"
#include "core/validate.hpp"
#include "service/client.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/server.hpp"
#include "service/wire.hpp"
#include "test_support.hpp"
#include "util/prof.hpp"
#include "util/wire.hpp"

namespace qbp::service {
namespace {

std::string tiny_problem_text(std::uint64_t seed = 11) {
  const auto problem = test::make_tiny_problem(
      {.num_components = 12, .num_partitions = 3, .seed = seed});
  std::ostringstream out;
  write_problem(out, problem);
  return out.str();
}

/// Thread-safe collecting sink + helpers to await and decode responses.
class ResponseLog {
 public:
  Server::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard lock(mutex_);
      lines_.push_back(line);
    };
  }

  [[nodiscard]] std::vector<std::string> lines() const {
    const std::lock_guard lock(mutex_);
    return lines_;
  }

  /// Responses with "type":"result", decoded, in arrival order.
  [[nodiscard]] std::vector<JobResult> results() const {
    std::vector<JobResult> out;
    for (const auto& line : lines()) {
      json::Value value;
      if (!json::parse(line, value).ok) continue;
      if (value.get_string("type", "") != "result") continue;
      JobResult result;
      EXPECT_TRUE(result_from_json(value, result).ok) << line;
      out.push_back(std::move(result));
    }
    return out;
  }

  [[nodiscard]] std::size_t count(std::string_view needle) const {
    std::size_t n = 0;
    for (const auto& line : lines()) {
      if (line.find(needle) != std::string::npos) ++n;
    }
    return n;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

std::string submit_line(const std::string& id, const std::string& problem,
                        std::uint64_t seed = 1, std::int32_t priority = 0,
                        double deadline_ms = 0.0, std::int32_t starts = 2,
                        std::int32_t threads = 1,
                        const std::string& method = "qbp") {
  Request request;
  request.type = RequestType::kSubmit;
  request.id = id;
  request.problem_text = problem;
  request.solver.method = method;
  request.solver.starts = starts;
  request.solver.threads = threads;
  request.solver.iterations = 40;
  request.solver.seed = seed;
  request.priority = priority;
  request.deadline_ms = deadline_ms;
  return format_request(request);
}

// ----------------------------------------------------------- protocol ----

TEST(Protocol, SubmitRoundTripPreservesEveryField) {
  Request request;
  request.type = RequestType::kSubmit;
  request.id = "job-42";
  request.problem_text = "problem \"x\"\nend\n";
  request.solver.method = "sa";
  request.solver.starts = 7;
  request.solver.threads = 3;
  request.solver.inner_threads = 4;
  request.solver.iterations = 250;
  request.solver.seed = 987654321;
  request.deadline_ms = 1500.5;
  request.priority = -2;
  request.solver.presolve_rules = "r0,r2";
  request.solver.ml_levels = 6;
  request.solver.ml_min_shrink = 0.85;
  request.solver.ml_refine_passes = 2;
  request.cache = false;
  request.warm_start = false;

  Request decoded;
  const auto parsed = parse_request(format_request(request), decoded);
  ASSERT_TRUE(parsed.ok) << parsed.message;
  EXPECT_EQ(decoded.type, RequestType::kSubmit);
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.problem_text, request.problem_text);
  EXPECT_EQ(decoded.solver.method, "sa");
  EXPECT_EQ(decoded.solver.starts, 7);
  EXPECT_EQ(decoded.solver.threads, 3);
  EXPECT_EQ(decoded.solver.inner_threads, 4);
  EXPECT_EQ(decoded.solver.iterations, 250);
  EXPECT_EQ(decoded.solver.seed, 987654321u);
  EXPECT_DOUBLE_EQ(decoded.deadline_ms, 1500.5);
  EXPECT_EQ(decoded.priority, -2);
  EXPECT_EQ(decoded.solver.presolve_rules, "r0,r2");
  EXPECT_EQ(decoded.solver.ml_levels, 6);
  EXPECT_DOUBLE_EQ(decoded.solver.ml_min_shrink, 0.85);
  EXPECT_EQ(decoded.solver.ml_refine_passes, 2);
  EXPECT_FALSE(decoded.cache);
  EXPECT_FALSE(decoded.warm_start);
}

TEST(Protocol, MultilevelSpecFieldsValidateAndDefault) {
  Request out;
  // Defaults survive an absent solver block.
  ASSERT_TRUE(parse_request(
                  "{\"type\":\"submit\",\"problem\":\"p\"}", out)
                  .ok);
  EXPECT_EQ(out.solver.ml_levels, 0);
  EXPECT_DOUBLE_EQ(out.solver.ml_min_shrink, 0.0);
  EXPECT_EQ(out.solver.ml_refine_passes, -1);
  // Out-of-range values are rejected with a message.
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"solver\":{\"ml_levels\":-1}}",
                             out)
                   .ok);
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"solver\":{\"ml_min_shrink\":1.0}}",
                             out)
                   .ok);
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"solver\":{\"ml_refine_passes\":-2}}",
                             out)
                   .ok);
}

TEST(Protocol, ResultRoundTripPreservesAssignment) {
  JobResult result;
  result.id = "r1";
  result.status = "ok";
  result.solver = "qbp";
  result.feasible = true;
  result.objective = 123.5;
  result.best_penalized = 123.5;
  result.assignment = {0, 2, 1, 1, 0};
  result.queue_wait_s = 0.25;
  result.solve_s = 1.5;
  result.starts_run = 4;

  JobResult decoded;
  const auto parsed = result_from_json(result_to_json(result), decoded);
  ASSERT_TRUE(parsed.ok) << parsed.message;
  EXPECT_EQ(decoded.id, "r1");
  EXPECT_EQ(decoded.status, "ok");
  EXPECT_TRUE(decoded.feasible);
  EXPECT_DOUBLE_EQ(decoded.objective, 123.5);
  EXPECT_EQ(decoded.assignment, result.assignment);
  EXPECT_EQ(decoded.starts_run, 4);
}

TEST(Protocol, ResultRoundTripPreservesCacheAndEcoFields) {
  JobResult result;
  result.id = "r2";
  result.status = "ok";
  result.cache_hit = true;

  JobResult decoded;
  ASSERT_TRUE(result_from_json(result_to_json(result), decoded).ok);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_FALSE(decoded.warm_start);

  result.cache_hit = false;
  result.warm_start = true;
  result.eco_repairs = 3;
  result.eco_edits = 5;
  ASSERT_TRUE(result_from_json(result_to_json(result), decoded).ok);
  EXPECT_FALSE(decoded.cache_hit);
  EXPECT_TRUE(decoded.warm_start);
  EXPECT_EQ(decoded.eco_repairs, 3);
  EXPECT_EQ(decoded.eco_edits, 5);
}

TEST(Protocol, MalformedRequestsFailWithMessages) {
  Request out;
  EXPECT_FALSE(parse_request("", out).ok);
  EXPECT_FALSE(parse_request("not json", out).ok);
  EXPECT_FALSE(parse_request("{\"type\":\"frobnicate\"}", out).ok);
  EXPECT_FALSE(parse_request("[1,2,3]", out).ok);
  // Submit needs exactly one problem source.
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"id\":\"x\"}", out).ok);
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"problem_file\":\"f\"}",
                             out)
                   .ok);
  // Hostile solver specs are rejected at the protocol boundary.
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"solver\":{\"starts\":0}}",
                             out)
                   .ok);
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"deadline_ms\":-5}",
                             out)
                   .ok);
}

// -------------------------------------------------------------- queue ----

TEST(JobQueue, PriorityThenFifoOrder) {
  JobQueue queue(8);
  const auto job = [](std::int64_t seq, std::int32_t priority) {
    Job j;
    j.id = "j" + std::to_string(seq);
    j.seq = seq;
    j.priority = priority;
    return j;
  };
  ASSERT_EQ(queue.push(job(0, 0)), JobQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(job(1, 5)), JobQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(job(2, 0)), JobQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(job(3, 5)), JobQueue::PushOutcome::kAccepted);

  Job out;
  std::vector<std::string> order;
  while (queue.size() > 0 && queue.pop(out)) order.push_back(out.id);
  EXPECT_EQ(order, (std::vector<std::string>{"j1", "j3", "j0", "j2"}));
}

TEST(JobQueue, FullAndClosedOutcomes) {
  JobQueue queue(2);
  EXPECT_EQ(queue.push(Job{}), JobQueue::PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(Job{}), JobQueue::PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(Job{}), JobQueue::PushOutcome::kFull);
  queue.close();
  EXPECT_EQ(queue.push(Job{}), JobQueue::PushOutcome::kClosed);
  Job out;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_TRUE(queue.pop(out));
  EXPECT_FALSE(queue.pop(out));  // closed and drained
}

TEST(JobQueue, CancelRemovesQueuedJob) {
  JobQueue queue(4);
  Job a;
  a.id = "a";
  a.seq = 0;
  Job b;
  b.id = "b";
  b.seq = 1;
  ASSERT_EQ(queue.push(std::move(a)), JobQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(std::move(b)), JobQueue::PushOutcome::kAccepted);
  Job removed;
  EXPECT_TRUE(queue.cancel("a", removed));
  EXPECT_EQ(removed.id, "a");
  EXPECT_FALSE(queue.cancel("a", removed));
  EXPECT_EQ(queue.size(), 1u);
}

// ------------------------------------------------------------- server ----

/// Await `n` results without draining (drain() closes the queue for good,
/// so tests that submit sequenced traffic poll instead).
void wait_for_results(const ResponseLog& log, std::size_t n) {
  for (int spins = 0; spins < 2000 && log.results().size() < n; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(log.results().size(), n);
}

TEST(Server, EndToEndJobsProduceDeterministicResults) {
  const std::string problem = tiny_problem_text();

  // Same jobs under different worker counts: the chosen assignments must be
  // bit-identical (the engine determinism contract, surfaced end to end).
  const auto run_batch = [&](std::int32_t workers) {
    ResponseLog log;
    ServerOptions options;
    options.workers = workers;
    Server server(options);
    for (int k = 0; k < 4; ++k) {
      server.handle_line(
          submit_line("job" + std::to_string(k), problem,
                      /*seed=*/100 + static_cast<std::uint64_t>(k)),
          log.sink());
    }
    server.drain();
    auto results = log.results();
    // Arrival order of results varies with scheduling; key them by id.
    std::sort(results.begin(), results.end(),
              [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
    return results;
  };

  const auto serial = run_batch(1);
  const auto parallel = run_batch(4);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k].id, parallel[k].id);
    EXPECT_EQ(serial[k].status, "ok") << serial[k].id;
    EXPECT_EQ(serial[k].status, parallel[k].status);
    EXPECT_DOUBLE_EQ(serial[k].objective, parallel[k].objective);
    EXPECT_EQ(serial[k].assignment, parallel[k].assignment) << serial[k].id;
  }
}

TEST(Server, ResubmittedJobIsServedFromCacheBitIdentical) {
  // The same problem + spec submitted twice: the second answer must be
  // flagged cache_hit and be bit-identical to the first -- across worker
  // counts (the cache key excludes threading entirely).
  const std::string problem = tiny_problem_text();
  for (const std::int32_t workers : {1, 4}) {
    ResponseLog log;
    ServerOptions options;
    options.workers = workers;
    Server server(options);
    server.handle_line(submit_line("first", problem, /*seed=*/3), log.sink());
    wait_for_results(log, 1);  // the first solve lands before the resubmit
    server.handle_line(submit_line("second", problem, /*seed=*/3), log.sink());
    server.drain();
    server.handle_line("{\"type\":\"stats\"}", log.sink());

    auto results = log.results();
    ASSERT_EQ(results.size(), 2u) << "workers " << workers;
    std::sort(results.begin(), results.end(),
              [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
    EXPECT_EQ(results[0].id, "first");
    EXPECT_FALSE(results[0].cache_hit);
    EXPECT_EQ(results[1].id, "second");
    EXPECT_TRUE(results[1].cache_hit) << "workers " << workers;
    EXPECT_EQ(results[1].status, results[0].status);
    EXPECT_EQ(results[1].objective, results[0].objective);
    EXPECT_EQ(results[1].assignment, results[0].assignment)
        << "workers " << workers;

    json::Value stats;
    ASSERT_TRUE(json::parse(log.lines().back(), stats).ok);
    const json::Value* gauges = stats.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_EQ(gauges->get_number("cache.hits", -1.0), 1.0);
    EXPECT_EQ(gauges->get_number("eco.exact_hits", -1.0), 1.0);
    EXPECT_GE(gauges->get_number("cache.entries", -1.0), 1.0);
    EXPECT_GT(gauges->get_number("cache.bytes", -1.0), 0.0);
  }
}

TEST(Server, CacheOffServesEveryJobColdAndBitIdentical) {
  // --cache off (capacity 0): no hits, no cache state -- and the answers
  // match the cache-on first solve bit for bit (the cache never changes
  // what a cold solve returns).
  const std::string problem = tiny_problem_text();

  ResponseLog on_log;
  {
    Server server(ServerOptions{});
    server.handle_line(submit_line("ref", problem, /*seed=*/3), on_log.sink());
    server.drain();
  }
  const auto reference = on_log.results();
  ASSERT_EQ(reference.size(), 1u);

  ResponseLog log;
  ServerOptions options;
  options.cache_capacity = 0;
  Server server(options);
  server.handle_line(submit_line("a", problem, /*seed=*/3), log.sink());
  wait_for_results(log, 1);
  server.handle_line(submit_line("b", problem, /*seed=*/3), log.sink());
  server.drain();
  server.handle_line("{\"type\":\"stats\"}", log.sink());

  auto results = log.results();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    EXPECT_FALSE(result.cache_hit) << result.id;
    EXPECT_FALSE(result.warm_start) << result.id;
    EXPECT_EQ(result.objective, reference[0].objective) << result.id;
    EXPECT_EQ(result.assignment, reference[0].assignment) << result.id;
  }
  json::Value stats;
  ASSERT_TRUE(json::parse(log.lines().back(), stats).ok);
  const json::Value* gauges = stats.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->get_number("cache.hits", -1.0), 0.0);
  EXPECT_EQ(gauges->get_number("cache.entries", -1.0), 0.0);
}

TEST(Server, PerRequestCacheOptOutSkipsLookupAndInsert) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});

  Request request;
  request.type = RequestType::kSubmit;
  request.id = "optout-1";
  request.problem_text = problem;
  request.solver.starts = 2;
  request.solver.iterations = 40;
  request.solver.seed = 3;
  request.cache = false;
  server.handle_line(format_request(request), log.sink());
  wait_for_results(log, 1);
  request.id = "optout-2";
  server.handle_line(format_request(request), log.sink());
  server.drain();

  const auto results = log.results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[1].cache_hit);
  EXPECT_EQ(results[1].assignment, results[0].assignment);
  EXPECT_EQ(server.cache().stats().inserts, 0);
}

TEST(Server, InnerThreadsAreBitIdenticalEndToEnd) {
  // The same job spec at every inner_threads value must produce the same
  // assignment and objective, bit for bit -- the util/parallel contract
  // surfaced through protocol -> job -> engine -> solver.
  const std::string problem = tiny_problem_text(29);

  const auto run_one = [&](std::int32_t inner_threads) {
    ResponseLog log;
    ServerOptions options;
    options.thread_limit = 64;  // roomy budget: nothing gets clamped
    Server server(options);
    Request request;
    request.type = RequestType::kSubmit;
    request.id = "inner";
    request.problem_text = problem;
    request.solver.starts = 3;
    request.solver.iterations = 40;
    request.solver.seed = 7;
    request.solver.inner_threads = inner_threads;
    server.handle_line(format_request(request), log.sink());
    server.drain();
    const auto results = log.results();
    EXPECT_EQ(results.size(), 1u);
    return results.empty() ? JobResult{} : results.front();
  };

  const JobResult reference = run_one(1);
  ASSERT_EQ(reference.status, "ok");
  for (const std::int32_t inner : {2, 8}) {
    const JobResult got = run_one(inner);
    EXPECT_EQ(got.status, reference.status) << "inner_threads " << inner;
    EXPECT_EQ(got.objective, reference.objective) << "inner_threads " << inner;
    EXPECT_EQ(got.assignment, reference.assignment)
        << "inner_threads " << inner;
  }
}

TEST(Server, OversubscribedInnerThreadsAreClampedAndReported) {
  // workers x concurrent starts x inner_threads must fit thread_limit: a
  // spec asking for 2 x 2 x 8 = 32 leaf threads against a budget of 8 gets
  // inner_threads clamped to 8 / 2 workers / 2 concurrent starts = 2, and
  // the stats snapshot reports both the clamp and the pool gauge.
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.workers = 2;
  options.thread_limit = 8;
  Server server(options);

  Request request;
  request.type = RequestType::kSubmit;
  request.id = "greedy";
  request.problem_text = problem;
  request.solver.starts = 4;
  request.solver.threads = 2;
  request.solver.iterations = 10;
  request.solver.inner_threads = 8;
  server.handle_line(format_request(request), log.sink());
  server.drain();
  server.handle_line("{\"type\":\"stats\"}", log.sink());

  const auto results = log.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.front().status, "ok");

  json::Value stats;
  ASSERT_TRUE(json::parse(log.lines().back(), stats).ok);
  const json::Value* gauges = stats.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->get_number("inner_threads_effective", -1.0), 2.0);
  // The utilization gauge always exists; its value is a point-in-time
  // sample in [0, 100].
  const double utilization = gauges->get_number("pool_utilization", -1.0);
  EXPECT_GE(utilization, 0.0);
  EXPECT_LE(utilization, 100.0);
}

TEST(Server, PerJobValidateFlagShadowAuditsEveryStart) {
  // A submit carrying "validate": true must shadow-audit every start and
  // report the count; one without the flag must not pay for the audit.
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});

  Request audited;
  audited.type = RequestType::kSubmit;
  audited.id = "audited";
  audited.problem_text = problem;
  audited.solver.starts = 3;
  audited.solver.iterations = 40;
  audited.solver.validate = true;
  server.handle_line(format_request(audited), log.sink());
  server.handle_line(submit_line("plain", problem), log.sink());
  server.drain();

  auto results = log.results();
  ASSERT_EQ(results.size(), 2u);
  std::sort(results.begin(), results.end(),
            [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
  EXPECT_EQ(results[0].id, "audited");
  EXPECT_EQ(results[0].status, "ok");
  EXPECT_EQ(results[0].starts_validated, 3);
  EXPECT_EQ(results[1].id, "plain");
  EXPECT_EQ(results[1].status, "ok");
  // Without the per-job flag the process-wide default applies: 0 audits in
  // a stock build, every start audited under -DQBPART_VALIDATE=ON.
  EXPECT_EQ(results[1].starts_validated, validation_enabled() ? 2 : 0);
}

TEST(Server, FifoWithinPriorityCompletionOrder) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.workers = 1;     // one worker => completion order == pop order
  options.autostart = false;  // stage everything first
  Server server(options);
  server.handle_line(submit_line("low-0", problem, 1, /*priority=*/0),
                     log.sink());
  server.handle_line(submit_line("high-0", problem, 2, /*priority=*/9),
                     log.sink());
  server.handle_line(submit_line("low-1", problem, 3, /*priority=*/0),
                     log.sink());
  server.handle_line(submit_line("high-1", problem, 4, /*priority=*/9),
                     log.sink());
  server.start();
  server.drain();

  const auto results = log.results();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].id, "high-0");
  EXPECT_EQ(results[1].id, "high-1");
  EXPECT_EQ(results[2].id, "low-0");
  EXPECT_EQ(results[3].id, "low-1");
}

TEST(Server, ExpiredDeadlineReportsDeadlineExceeded) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.autostart = false;
  Server server(options);
  // 1 microsecond: expired long before the (not yet started) workers pop it.
  server.handle_line(submit_line("doomed", problem, 1, 0, /*deadline_ms=*/0.001),
                     log.sink());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.start();
  server.drain();

  const auto results = log.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, "doomed");
  EXPECT_EQ(results[0].status, "deadline_exceeded");
  EXPECT_TRUE(results[0].assignment.empty());
  EXPECT_EQ(server.metrics().counter("jobs_deadline_exceeded").value(), 1);
}

TEST(Server, MidRunDeadlineCancelsCooperatively) {
  // A slow job: many SA starts on one thread, far beyond a 30 ms budget.
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});
  server.handle_line(submit_line("slow", problem, 1, 0, /*deadline_ms=*/30.0,
                                 /*starts=*/512, /*threads=*/1, "sa"),
                     log.sink());
  server.drain();

  const auto results = log.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "deadline_exceeded");
}

TEST(Server, FullQueueRejectsWithBackpressure) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.queue_capacity = 2;
  options.autostart = false;  // nothing pops, so the queue stays full
  Server server(options);
  server.handle_line(submit_line("a", problem), log.sink());
  server.handle_line(submit_line("b", problem), log.sink());
  server.handle_line(submit_line("c", problem), log.sink());
  EXPECT_EQ(log.count("\"type\":\"reject\""), 1u);
  EXPECT_EQ(log.count("queue full (capacity 2)"), 1u);
  EXPECT_EQ(server.metrics().counter("jobs_rejected").value(), 1);
  server.drain();  // a and b still complete
  EXPECT_EQ(log.results().size(), 2u);
}

TEST(Server, CancelQueuedJobAnswersCancelled) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.autostart = false;
  Server server(options);
  server.handle_line(submit_line("keep", problem), log.sink());
  server.handle_line(submit_line("kill", problem), log.sink());
  server.handle_line("{\"type\":\"cancel\",\"id\":\"kill\"}", log.sink());
  server.handle_line("{\"type\":\"cancel\",\"id\":\"nonexistent\"}",
                     log.sink());
  server.start();
  server.drain();

  const auto results = log.results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(log.count("\"status\":\"cancelled\""), 1u);
  EXPECT_EQ(log.count("unknown job id"), 1u);
  EXPECT_EQ(server.metrics().counter("jobs_cancelled").value(), 1);
}

TEST(Server, DrainingServerRejectsNewSubmits) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});
  server.begin_drain();
  server.handle_line(submit_line("late", problem), log.sink());
  EXPECT_EQ(log.count("server draining"), 1u);
  server.drain();
  EXPECT_EQ(log.results().size(), 0u);
}

TEST(Server, MalformedLinesAndBadProblemsAreContained) {
  ResponseLog log;
  Server server(ServerOptions{});
  server.handle_line("this is not json", log.sink());
  server.handle_line("{\"type\":\"submit\"}", log.sink());
  // Valid request, garbage problem text: must come back status "error",
  // not crash the worker.
  server.handle_line(submit_line("bad", "wibble wobble\n"), log.sink());
  server.drain();
  EXPECT_EQ(log.count("\"type\":\"error\""), 2u);
  EXPECT_EQ(log.count("\"status\":\"error\""), 1u);
  EXPECT_EQ(server.metrics().counter("requests_malformed").value(), 2);
  EXPECT_EQ(server.metrics().counter("jobs_error").value(), 1);
}

TEST(Server, DuplicateActiveIdRejected) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.autostart = false;
  Server server(options);
  server.handle_line(submit_line("dup", problem), log.sink());
  server.handle_line(submit_line("dup", problem), log.sink());
  EXPECT_EQ(log.count("duplicate id"), 1u);
  server.drain();
  EXPECT_EQ(log.results().size(), 1u);
}

TEST(Server, StatsRequestReportsCountersAndHistograms) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});
  server.handle_line(submit_line("s1", problem), log.sink());
  server.drain();
  server.handle_line("{\"type\":\"stats\"}", log.sink());

  json::Value stats;
  ASSERT_TRUE(json::parse(log.lines().back(), stats).ok);
  EXPECT_EQ(stats.get_string("type", ""), "stats");
  EXPECT_GE(stats.get_number("uptime_s", -1.0), 0.0);
  const json::Value* counters = stats.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get_number("jobs_completed", 0), 1.0);
  const json::Value* histograms = stats.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* solve = histograms->find("solve_seconds");
  ASSERT_NE(solve, nullptr);
  EXPECT_EQ(solve->get_number("count", 0), 1.0);
}

TEST(Server, PhaseProfilerSurfacesHistogramsInStats) {
  // With the phase profiler on (qbpartd --profile), each job's per-phase
  // time deltas land in phase_seconds.* histograms in the stats snapshot.
  prof::set_enabled(true);
  prof::reset();
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  {
    Server server(ServerOptions{});
    server.handle_line(submit_line("p1", problem), log.sink());
    server.handle_line(submit_line("p2", problem, /*seed=*/2), log.sink());
    server.drain();
    server.handle_line("{\"type\":\"stats\"}", log.sink());
  }
  prof::set_enabled(false);
  prof::reset();

  json::Value stats;
  ASSERT_TRUE(json::parse(log.lines().back(), stats).ok);
  const json::Value* histograms = stats.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* starts = histograms->find("phase_seconds.portfolio.start");
  ASSERT_NE(starts, nullptr);
  EXPECT_EQ(starts->get_number("count", 0), 2.0);  // one observation per job
  const json::Value* gap = histograms->find("phase_seconds.burkard.step6_gap");
  ASSERT_NE(gap, nullptr);
  EXPECT_EQ(gap->get_number("count", 0), 2.0);
}

TEST(Server, ShutdownRequestFlagsTheServeLoop) {
  ResponseLog log;
  Server server(ServerOptions{});
  EXPECT_FALSE(server.shutdown_requested());
  server.handle_line("{\"type\":\"shutdown\"}", log.sink());
  EXPECT_TRUE(server.shutdown_requested());
  EXPECT_EQ(log.count("\"type\":\"shutdown\""), 1u);
  server.drain();
}

// ------------------------------------------------- binary wire framing ----

Request make_wire_request(const std::string& id, const std::string& problem,
                          std::uint64_t seed = 1) {
  Request request;
  request.type = RequestType::kSubmit;
  request.id = id;
  request.problem_text = problem;
  request.solver.starts = 2;
  request.solver.iterations = 40;
  request.solver.seed = seed;
  return request;
}

std::string wire_frame(const Request& request) {
  std::string frame;
  encode_request_frame(request, frame);
  return frame;
}

/// Decode the binary kResult frames collected by a sink, arrival order.
std::vector<JobResult> binary_results(const std::vector<std::string>& frames) {
  std::vector<JobResult> out;
  for (const auto& bytes : frames) {
    wire::FrameView frame;
    std::string error;
    if (wire::peek_frame(bytes, frame, error) != wire::FrameStatus::kFrame) {
      continue;
    }
    if (static_cast<WireMsg>(frame.type) != WireMsg::kResult) continue;
    JobResult result;
    EXPECT_TRUE(decode_result(frame.payload, result, error)) << error;
    out.push_back(std::move(result));
  }
  return out;
}

void expect_same_result(const JobResult& a, const JobResult& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.solver, b.solver);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.best_penalized, b.best_penalized);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.starts_run, b.starts_run);
  EXPECT_EQ(a.cache_hit, b.cache_hit);
  EXPECT_EQ(a.warm_start, b.warm_start);
}

void sort_by_id(std::vector<JobResult>& results) {
  std::sort(results.begin(), results.end(),
            [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
}

TEST(Server, BinaryFramesBitIdenticalToNdjsonAcrossWorkers) {
  const std::string problem = tiny_problem_text();
  constexpr int kJobs = 6;

  for (const std::int32_t workers : {1, 4}) {
    ResponseLog ndjson_log;
    {
      ServerOptions options;
      options.workers = workers;
      Server server(options);
      for (int k = 0; k < kJobs; ++k) {
        const auto request =
            make_wire_request("j" + std::to_string(k), problem, 7);
        server.handle_line(format_request(request), ndjson_log.sink());
      }
      server.drain();
    }
    ResponseLog binary_log;
    {
      ServerOptions options;
      options.workers = workers;
      Server server(options);
      for (int k = 0; k < kJobs; ++k) {
        const auto request =
            make_wire_request("j" + std::to_string(k), problem, 7);
        const std::string frame = wire_frame(request);
        wire::FrameView view;
        std::string error;
        ASSERT_EQ(wire::peek_frame(frame, view, error),
                  wire::FrameStatus::kFrame);
        server.handle_frame(view.type, view.payload, binary_log.sink());
      }
      server.drain();
    }

    std::vector<JobResult> from_lines = ndjson_log.results();
    std::vector<JobResult> from_frames = binary_results(binary_log.lines());
    ASSERT_EQ(from_lines.size(), static_cast<std::size_t>(kJobs));
    ASSERT_EQ(from_frames.size(), static_cast<std::size_t>(kJobs));
    sort_by_id(from_lines);
    sort_by_id(from_frames);
    for (int k = 0; k < kJobs; ++k) {
      expect_same_result(from_lines[static_cast<std::size_t>(k)],
                         from_frames[static_cast<std::size_t>(k)]);
    }
  }
}

TEST(Server, WireMetricsPopulateOnBinaryTraffic) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});
  const std::string frame = wire_frame(make_wire_request("w1", problem));
  wire::FrameView view;
  std::string error;
  ASSERT_EQ(wire::peek_frame(frame, view, error), wire::FrameStatus::kFrame);
  server.handle_frame(view.type, view.payload, log.sink());
  server.drain();

  const json::Value stats = server.stats_json();
  const json::Value* counters = stats.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->get_number("wire.frames", 0), 1.0);
  EXPECT_GE(counters->get_number("wire.bytes_in", 0),
            static_cast<double>(view.payload.size()));
  EXPECT_GE(counters->get_number("wire.bytes_out", 0), 1.0);
  const json::Value* histograms = stats.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* decode = histograms->find("wire.decode_seconds");
  ASSERT_NE(decode, nullptr);
  EXPECT_GE(decode->get_number("count", 0), 1.0);
}

// ---------------------------------------------------------- serve loops ----

/// Run serve_fd over pipes: feed `input` as the connection's bytes, return
/// everything the serve loop wrote.  The write side closes after the
/// input, so the loop sees EOF, drains and exits -- one whole connection.
std::string serve_fd_session(Server& server, const std::string& input,
                             WireMode mode) {
  int in_pipe[2];
  int out_pipe[2];
  EXPECT_EQ(::pipe(in_pipe), 0);
  EXPECT_EQ(::pipe(out_pipe), 0);
  std::thread serve([&server, &in_pipe, &out_pipe, mode] {
    (void)serve_fd(server, in_pipe[0], out_pipe[1], /*wake_fd=*/-1, mode);
  });
  std::size_t written = 0;
  while (written < input.size()) {
    const ssize_t n = ::write(in_pipe[1], input.data() + written,
                              input.size() - written);
    if (n <= 0) {
      ADD_FAILURE() << "pipe write failed";
      break;
    }
    written += static_cast<std::size_t>(n);
  }
  ::close(in_pipe[1]);
  serve.join();
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  std::string output;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::read(out_pipe[0], buffer, sizeof buffer);
    if (n <= 0) break;
    output.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(out_pipe[0]);
  return output;
}

TEST(ServeLoop, AutoDetectServesBothFramingsOverPipes) {
  const std::string problem = tiny_problem_text();

  // NDJSON connection: first byte '{' -> line framing.
  std::string ndjson_reply;
  {
    Server server(ServerOptions{});
    ndjson_reply = serve_fd_session(
        server, format_request(make_wire_request("a1", problem, 7)) + "\n",
        WireMode::kAuto);
  }
  json::Value value;
  ASSERT_TRUE(json::parse(ndjson_reply, value).ok) << ndjson_reply;
  JobResult ndjson_result;
  ASSERT_TRUE(result_from_json(value, ndjson_result).ok);
  EXPECT_EQ(ndjson_result.id, "a1");

  // Binary connection on the SAME entry point: first byte 0x9B -> frames.
  std::string binary_reply;
  {
    Server server(ServerOptions{});
    binary_reply = serve_fd_session(
        server, wire_frame(make_wire_request("a1", problem, 7)),
        WireMode::kAuto);
  }
  const std::vector<JobResult> results = binary_results({binary_reply});
  ASSERT_EQ(results.size(), 1u);
  expect_same_result(ndjson_result, results[0]);
}

TEST(ServeLoop, ForcedNdjsonTreatsBinaryBytesAsText) {
  // With --wire ndjson the sniffing is off: frame bytes are just a very
  // broken text line, answered with a parse error -- the pre-binary
  // behaviour a pinned deployment relies on.
  Server server(ServerOptions{});
  const std::string reply = serve_fd_session(
      server, wire_frame(make_wire_request("n1", tiny_problem_text())) + "\n",
      WireMode::kNdjson);
  EXPECT_NE(reply.find("\"type\":\"error\""), std::string::npos) << reply;
}

TEST(ServeLoop, ForcedBinaryRejectsTextBytes) {
  Server server(ServerOptions{});
  const std::string reply = serve_fd_session(
      server, "{\"type\":\"stats\"}\n", WireMode::kBinary);
  // The reply is an error FRAME (kBad magic on the text bytes).
  wire::FrameView frame;
  std::string error;
  ASSERT_EQ(wire::peek_frame(reply, frame, error), wire::FrameStatus::kFrame)
      << "expected a binary error frame, got: " << reply;
  EXPECT_EQ(static_cast<WireMsg>(frame.type), WireMsg::kError);
}

class TcpServerFixture {
 public:
  explicit TcpServerFixture(ServerOptions options = {})
      : server_(options), thread_([this] {
          (void)serve_tcp(server_, /*port=*/0, /*wake_fd=*/-1, WireMode::kAuto,
                          &port_);
        }) {
    while (port_.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  ~TcpServerFixture() {
    // A shutdown request flags the accept loop; it exits on its next poll.
    TcpClient client;
    if (client.connect(port())) {
      (void)client.send_line("{\"type\":\"shutdown\"}");
      std::string line;
      (void)client.read_line(line);
    }
    thread_.join();
  }

  [[nodiscard]] std::uint16_t port() const { return port_.load(); }
  [[nodiscard]] Server& server() { return server_; }

 private:
  Server server_;
  std::atomic<std::uint16_t> port_{0};
  std::thread thread_;
};

TEST(ServeLoop, MixedFramingClientsOnOneTcpServer) {
  const std::string problem = tiny_problem_text();
  TcpServerFixture fixture;

  TcpClient ndjson_client;
  ASSERT_TRUE(ndjson_client.connect(fixture.port()));
  ASSERT_TRUE(ndjson_client.send_line(
      format_request(make_wire_request("t1", problem, 7))));

  TcpClient binary_client;
  ASSERT_TRUE(binary_client.connect(fixture.port()));
  ASSERT_TRUE(binary_client.send_bytes(
      wire_frame(make_wire_request("t2", problem, 7))));

  std::string line;
  ASSERT_TRUE(ndjson_client.read_line(line));
  json::Value value;
  ASSERT_TRUE(json::parse(line, value).ok) << line;
  JobResult ndjson_result;
  ASSERT_TRUE(result_from_json(value, ndjson_result).ok);

  std::uint8_t type = 0;
  std::string payload;
  ASSERT_TRUE(binary_client.read_frame(type, payload));
  ASSERT_EQ(static_cast<WireMsg>(type), WireMsg::kResult);
  JobResult binary_result;
  std::string error;
  ASSERT_TRUE(decode_result(payload, binary_result, error)) << error;

  // Same problem, same seed -> identical bits modulo the id and timing.
  EXPECT_EQ(ndjson_result.id, "t1");
  EXPECT_EQ(binary_result.id, "t2");
  EXPECT_EQ(ndjson_result.status, binary_result.status);
  EXPECT_EQ(ndjson_result.objective, binary_result.objective);
  EXPECT_EQ(ndjson_result.assignment, binary_result.assignment);
}

TEST(ServeLoop, MalformedFramesFailOneConnectionNotTheDaemon) {
  const std::string problem = tiny_problem_text();
  TcpServerFixture fixture;

  {
    // Bad magic after the binary sniff byte: the connection gets an error
    // frame and is closed.
    TcpClient hostile;
    ASSERT_TRUE(hostile.connect(fixture.port()));
    ASSERT_TRUE(hostile.send_bytes(std::string("\x9BXYZ-not-a-frame", 16)));
    std::uint8_t type = 0;
    std::string payload;
    ASSERT_TRUE(hostile.read_frame(type, payload));
    EXPECT_EQ(static_cast<WireMsg>(type), WireMsg::kError);
    // The server closes its side; the next read sees EOF.
    EXPECT_FALSE(hostile.read_frame(type, payload));
  }
  {
    // A header advertising an oversized payload is kBad, same containment.
    std::string oversized = wire_frame(make_wire_request("x", problem));
    const std::uint32_t huge = wire::kMaxPayload + 1;
    std::memcpy(oversized.data() + 8, &huge, sizeof huge);
    TcpClient hostile;
    ASSERT_TRUE(hostile.connect(fixture.port()));
    ASSERT_TRUE(hostile.send_bytes(oversized));
    std::uint8_t type = 0;
    std::string payload;
    ASSERT_TRUE(hostile.read_frame(type, payload));
    EXPECT_EQ(static_cast<WireMsg>(type), WireMsg::kError);
  }
  {
    // A truncated frame then disconnect: no reply owed, nothing crashes.
    TcpClient hostile;
    ASSERT_TRUE(hostile.connect(fixture.port()));
    const std::string frame = wire_frame(make_wire_request("y", problem));
    ASSERT_TRUE(hostile.send_bytes(frame.substr(0, frame.size() / 2)));
    hostile.close();
  }

  // The daemon is still healthy: a fresh well-formed client round-trips.
  TcpClient good;
  ASSERT_TRUE(good.connect(fixture.port()));
  ASSERT_TRUE(good.send_bytes(wire_frame(make_wire_request("z1", problem))));
  std::uint8_t type = 0;
  std::string payload;
  ASSERT_TRUE(good.read_frame(type, payload));
  EXPECT_EQ(static_cast<WireMsg>(type), WireMsg::kResult);
}

// ------------------------------------------------------------ metrics ----

TEST(Metrics, StripedCounterSumsConcurrentIncrements) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("striped");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int k = 0; k < kIncrements; ++k) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::int64_t>(kThreads) * kIncrements);
}

TEST(Metrics, HistogramBucketsAreCumulativeInJson) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("h", Histogram::latency_bounds());
  histogram.observe(0.0005);  // below the first bound
  histogram.observe(0.003);
  histogram.observe(100.0);  // beyond the last bound -> +inf bucket

  const auto snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0005);
  EXPECT_DOUBLE_EQ(snapshot.max, 100.0);

  const json::Value rendered = registry.to_json();
  const json::Value* h = rendered.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  const json::Value* buckets = h->find("buckets");
  ASSERT_NE(buckets, nullptr);
  // Cumulative: every bucket count <= the next, final bucket is the total.
  double previous = 0.0;
  for (std::size_t k = 0; k < buckets->size(); ++k) {
    const double count = buckets->at(k).get_number("count", -1.0);
    EXPECT_GE(count, previous);
    previous = count;
  }
  EXPECT_DOUBLE_EQ(previous, 3.0);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& first = registry.counter("x");
  first.inc();
  Counter& again = registry.counter("x");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.value(), 1);
}

}  // namespace
}  // namespace qbp::service
