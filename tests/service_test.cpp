// End-to-end tests for the qbpartd service layer: protocol round-trips,
// queue ordering, the server lifecycle (submit -> result, deadlines,
// cancellation, backpressure, drain), determinism across worker counts,
// and the metrics registry.
//
// The server is exercised in-process: handle_line() with a collecting sink
// is exactly the pipe-mode serve loop minus the fd plumbing, and keeps the
// tests free of process management.  ServerOptions::autostart = false lets
// a test stage every submission before any worker can pop, making
// completion order assertions deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/problem_io.hpp"
#include "core/validate.hpp"
#include "service/metrics.hpp"
#include "service/protocol.hpp"
#include "service/queue.hpp"
#include "service/server.hpp"
#include "test_support.hpp"
#include "util/prof.hpp"

namespace qbp::service {
namespace {

std::string tiny_problem_text(std::uint64_t seed = 11) {
  const auto problem = test::make_tiny_problem(
      {.num_components = 12, .num_partitions = 3, .seed = seed});
  std::ostringstream out;
  write_problem(out, problem);
  return out.str();
}

/// Thread-safe collecting sink + helpers to await and decode responses.
class ResponseLog {
 public:
  Server::Sink sink() {
    return [this](const std::string& line) {
      const std::lock_guard lock(mutex_);
      lines_.push_back(line);
    };
  }

  [[nodiscard]] std::vector<std::string> lines() const {
    const std::lock_guard lock(mutex_);
    return lines_;
  }

  /// Responses with "type":"result", decoded, in arrival order.
  [[nodiscard]] std::vector<JobResult> results() const {
    std::vector<JobResult> out;
    for (const auto& line : lines()) {
      json::Value value;
      if (!json::parse(line, value).ok) continue;
      if (value.get_string("type", "") != "result") continue;
      JobResult result;
      EXPECT_TRUE(result_from_json(value, result).ok) << line;
      out.push_back(std::move(result));
    }
    return out;
  }

  [[nodiscard]] std::size_t count(std::string_view needle) const {
    std::size_t n = 0;
    for (const auto& line : lines()) {
      if (line.find(needle) != std::string::npos) ++n;
    }
    return n;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::string> lines_;
};

std::string submit_line(const std::string& id, const std::string& problem,
                        std::uint64_t seed = 1, std::int32_t priority = 0,
                        double deadline_ms = 0.0, std::int32_t starts = 2,
                        std::int32_t threads = 1,
                        const std::string& method = "qbp") {
  Request request;
  request.type = RequestType::kSubmit;
  request.id = id;
  request.problem_text = problem;
  request.solver.method = method;
  request.solver.starts = starts;
  request.solver.threads = threads;
  request.solver.iterations = 40;
  request.solver.seed = seed;
  request.priority = priority;
  request.deadline_ms = deadline_ms;
  return format_request(request);
}

// ----------------------------------------------------------- protocol ----

TEST(Protocol, SubmitRoundTripPreservesEveryField) {
  Request request;
  request.type = RequestType::kSubmit;
  request.id = "job-42";
  request.problem_text = "problem \"x\"\nend\n";
  request.solver.method = "sa";
  request.solver.starts = 7;
  request.solver.threads = 3;
  request.solver.inner_threads = 4;
  request.solver.iterations = 250;
  request.solver.seed = 987654321;
  request.deadline_ms = 1500.5;
  request.priority = -2;
  request.solver.presolve_rules = "r0,r2";
  request.solver.ml_levels = 6;
  request.solver.ml_min_shrink = 0.85;
  request.solver.ml_refine_passes = 2;
  request.cache = false;
  request.warm_start = false;

  Request decoded;
  const auto parsed = parse_request(format_request(request), decoded);
  ASSERT_TRUE(parsed.ok) << parsed.message;
  EXPECT_EQ(decoded.type, RequestType::kSubmit);
  EXPECT_EQ(decoded.id, request.id);
  EXPECT_EQ(decoded.problem_text, request.problem_text);
  EXPECT_EQ(decoded.solver.method, "sa");
  EXPECT_EQ(decoded.solver.starts, 7);
  EXPECT_EQ(decoded.solver.threads, 3);
  EXPECT_EQ(decoded.solver.inner_threads, 4);
  EXPECT_EQ(decoded.solver.iterations, 250);
  EXPECT_EQ(decoded.solver.seed, 987654321u);
  EXPECT_DOUBLE_EQ(decoded.deadline_ms, 1500.5);
  EXPECT_EQ(decoded.priority, -2);
  EXPECT_EQ(decoded.solver.presolve_rules, "r0,r2");
  EXPECT_EQ(decoded.solver.ml_levels, 6);
  EXPECT_DOUBLE_EQ(decoded.solver.ml_min_shrink, 0.85);
  EXPECT_EQ(decoded.solver.ml_refine_passes, 2);
  EXPECT_FALSE(decoded.cache);
  EXPECT_FALSE(decoded.warm_start);
}

TEST(Protocol, MultilevelSpecFieldsValidateAndDefault) {
  Request out;
  // Defaults survive an absent solver block.
  ASSERT_TRUE(parse_request(
                  "{\"type\":\"submit\",\"problem\":\"p\"}", out)
                  .ok);
  EXPECT_EQ(out.solver.ml_levels, 0);
  EXPECT_DOUBLE_EQ(out.solver.ml_min_shrink, 0.0);
  EXPECT_EQ(out.solver.ml_refine_passes, -1);
  // Out-of-range values are rejected with a message.
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"solver\":{\"ml_levels\":-1}}",
                             out)
                   .ok);
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"solver\":{\"ml_min_shrink\":1.0}}",
                             out)
                   .ok);
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"solver\":{\"ml_refine_passes\":-2}}",
                             out)
                   .ok);
}

TEST(Protocol, ResultRoundTripPreservesAssignment) {
  JobResult result;
  result.id = "r1";
  result.status = "ok";
  result.solver = "qbp";
  result.feasible = true;
  result.objective = 123.5;
  result.best_penalized = 123.5;
  result.assignment = {0, 2, 1, 1, 0};
  result.queue_wait_s = 0.25;
  result.solve_s = 1.5;
  result.starts_run = 4;

  JobResult decoded;
  const auto parsed = result_from_json(result_to_json(result), decoded);
  ASSERT_TRUE(parsed.ok) << parsed.message;
  EXPECT_EQ(decoded.id, "r1");
  EXPECT_EQ(decoded.status, "ok");
  EXPECT_TRUE(decoded.feasible);
  EXPECT_DOUBLE_EQ(decoded.objective, 123.5);
  EXPECT_EQ(decoded.assignment, result.assignment);
  EXPECT_EQ(decoded.starts_run, 4);
}

TEST(Protocol, ResultRoundTripPreservesCacheAndEcoFields) {
  JobResult result;
  result.id = "r2";
  result.status = "ok";
  result.cache_hit = true;

  JobResult decoded;
  ASSERT_TRUE(result_from_json(result_to_json(result), decoded).ok);
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_FALSE(decoded.warm_start);

  result.cache_hit = false;
  result.warm_start = true;
  result.eco_repairs = 3;
  result.eco_edits = 5;
  ASSERT_TRUE(result_from_json(result_to_json(result), decoded).ok);
  EXPECT_FALSE(decoded.cache_hit);
  EXPECT_TRUE(decoded.warm_start);
  EXPECT_EQ(decoded.eco_repairs, 3);
  EXPECT_EQ(decoded.eco_edits, 5);
}

TEST(Protocol, MalformedRequestsFailWithMessages) {
  Request out;
  EXPECT_FALSE(parse_request("", out).ok);
  EXPECT_FALSE(parse_request("not json", out).ok);
  EXPECT_FALSE(parse_request("{\"type\":\"frobnicate\"}", out).ok);
  EXPECT_FALSE(parse_request("[1,2,3]", out).ok);
  // Submit needs exactly one problem source.
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"id\":\"x\"}", out).ok);
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"problem_file\":\"f\"}",
                             out)
                   .ok);
  // Hostile solver specs are rejected at the protocol boundary.
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"solver\":{\"starts\":0}}",
                             out)
                   .ok);
  EXPECT_FALSE(parse_request("{\"type\":\"submit\",\"problem\":\"p\","
                             "\"deadline_ms\":-5}",
                             out)
                   .ok);
}

// -------------------------------------------------------------- queue ----

TEST(JobQueue, PriorityThenFifoOrder) {
  JobQueue queue(8);
  const auto job = [](std::int64_t seq, std::int32_t priority) {
    Job j;
    j.id = "j" + std::to_string(seq);
    j.seq = seq;
    j.priority = priority;
    return j;
  };
  ASSERT_EQ(queue.push(job(0, 0)), JobQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(job(1, 5)), JobQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(job(2, 0)), JobQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(job(3, 5)), JobQueue::PushOutcome::kAccepted);

  Job out;
  std::vector<std::string> order;
  while (queue.size() > 0 && queue.pop(out)) order.push_back(out.id);
  EXPECT_EQ(order, (std::vector<std::string>{"j1", "j3", "j0", "j2"}));
}

TEST(JobQueue, FullAndClosedOutcomes) {
  JobQueue queue(2);
  EXPECT_EQ(queue.push(Job{}), JobQueue::PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(Job{}), JobQueue::PushOutcome::kAccepted);
  EXPECT_EQ(queue.push(Job{}), JobQueue::PushOutcome::kFull);
  queue.close();
  EXPECT_EQ(queue.push(Job{}), JobQueue::PushOutcome::kClosed);
  Job out;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_TRUE(queue.pop(out));
  EXPECT_FALSE(queue.pop(out));  // closed and drained
}

TEST(JobQueue, CancelRemovesQueuedJob) {
  JobQueue queue(4);
  Job a;
  a.id = "a";
  a.seq = 0;
  Job b;
  b.id = "b";
  b.seq = 1;
  ASSERT_EQ(queue.push(std::move(a)), JobQueue::PushOutcome::kAccepted);
  ASSERT_EQ(queue.push(std::move(b)), JobQueue::PushOutcome::kAccepted);
  Job removed;
  EXPECT_TRUE(queue.cancel("a", removed));
  EXPECT_EQ(removed.id, "a");
  EXPECT_FALSE(queue.cancel("a", removed));
  EXPECT_EQ(queue.size(), 1u);
}

// ------------------------------------------------------------- server ----

/// Await `n` results without draining (drain() closes the queue for good,
/// so tests that submit sequenced traffic poll instead).
void wait_for_results(const ResponseLog& log, std::size_t n) {
  for (int spins = 0; spins < 2000 && log.results().size() < n; ++spins) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GE(log.results().size(), n);
}

TEST(Server, EndToEndJobsProduceDeterministicResults) {
  const std::string problem = tiny_problem_text();

  // Same jobs under different worker counts: the chosen assignments must be
  // bit-identical (the engine determinism contract, surfaced end to end).
  const auto run_batch = [&](std::int32_t workers) {
    ResponseLog log;
    ServerOptions options;
    options.workers = workers;
    Server server(options);
    for (int k = 0; k < 4; ++k) {
      server.handle_line(
          submit_line("job" + std::to_string(k), problem,
                      /*seed=*/100 + static_cast<std::uint64_t>(k)),
          log.sink());
    }
    server.drain();
    auto results = log.results();
    // Arrival order of results varies with scheduling; key them by id.
    std::sort(results.begin(), results.end(),
              [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
    return results;
  };

  const auto serial = run_batch(1);
  const auto parallel = run_batch(4);
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), 4u);
  for (std::size_t k = 0; k < serial.size(); ++k) {
    EXPECT_EQ(serial[k].id, parallel[k].id);
    EXPECT_EQ(serial[k].status, "ok") << serial[k].id;
    EXPECT_EQ(serial[k].status, parallel[k].status);
    EXPECT_DOUBLE_EQ(serial[k].objective, parallel[k].objective);
    EXPECT_EQ(serial[k].assignment, parallel[k].assignment) << serial[k].id;
  }
}

TEST(Server, ResubmittedJobIsServedFromCacheBitIdentical) {
  // The same problem + spec submitted twice: the second answer must be
  // flagged cache_hit and be bit-identical to the first -- across worker
  // counts (the cache key excludes threading entirely).
  const std::string problem = tiny_problem_text();
  for (const std::int32_t workers : {1, 4}) {
    ResponseLog log;
    ServerOptions options;
    options.workers = workers;
    Server server(options);
    server.handle_line(submit_line("first", problem, /*seed=*/3), log.sink());
    wait_for_results(log, 1);  // the first solve lands before the resubmit
    server.handle_line(submit_line("second", problem, /*seed=*/3), log.sink());
    server.drain();
    server.handle_line("{\"type\":\"stats\"}", log.sink());

    auto results = log.results();
    ASSERT_EQ(results.size(), 2u) << "workers " << workers;
    std::sort(results.begin(), results.end(),
              [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
    EXPECT_EQ(results[0].id, "first");
    EXPECT_FALSE(results[0].cache_hit);
    EXPECT_EQ(results[1].id, "second");
    EXPECT_TRUE(results[1].cache_hit) << "workers " << workers;
    EXPECT_EQ(results[1].status, results[0].status);
    EXPECT_EQ(results[1].objective, results[0].objective);
    EXPECT_EQ(results[1].assignment, results[0].assignment)
        << "workers " << workers;

    json::Value stats;
    ASSERT_TRUE(json::parse(log.lines().back(), stats).ok);
    const json::Value* gauges = stats.find("gauges");
    ASSERT_NE(gauges, nullptr);
    EXPECT_EQ(gauges->get_number("cache.hits", -1.0), 1.0);
    EXPECT_EQ(gauges->get_number("eco.exact_hits", -1.0), 1.0);
    EXPECT_GE(gauges->get_number("cache.entries", -1.0), 1.0);
    EXPECT_GT(gauges->get_number("cache.bytes", -1.0), 0.0);
  }
}

TEST(Server, CacheOffServesEveryJobColdAndBitIdentical) {
  // --cache off (capacity 0): no hits, no cache state -- and the answers
  // match the cache-on first solve bit for bit (the cache never changes
  // what a cold solve returns).
  const std::string problem = tiny_problem_text();

  ResponseLog on_log;
  {
    Server server(ServerOptions{});
    server.handle_line(submit_line("ref", problem, /*seed=*/3), on_log.sink());
    server.drain();
  }
  const auto reference = on_log.results();
  ASSERT_EQ(reference.size(), 1u);

  ResponseLog log;
  ServerOptions options;
  options.cache_capacity = 0;
  Server server(options);
  server.handle_line(submit_line("a", problem, /*seed=*/3), log.sink());
  wait_for_results(log, 1);
  server.handle_line(submit_line("b", problem, /*seed=*/3), log.sink());
  server.drain();
  server.handle_line("{\"type\":\"stats\"}", log.sink());

  auto results = log.results();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& result : results) {
    EXPECT_FALSE(result.cache_hit) << result.id;
    EXPECT_FALSE(result.warm_start) << result.id;
    EXPECT_EQ(result.objective, reference[0].objective) << result.id;
    EXPECT_EQ(result.assignment, reference[0].assignment) << result.id;
  }
  json::Value stats;
  ASSERT_TRUE(json::parse(log.lines().back(), stats).ok);
  const json::Value* gauges = stats.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->get_number("cache.hits", -1.0), 0.0);
  EXPECT_EQ(gauges->get_number("cache.entries", -1.0), 0.0);
}

TEST(Server, PerRequestCacheOptOutSkipsLookupAndInsert) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});

  Request request;
  request.type = RequestType::kSubmit;
  request.id = "optout-1";
  request.problem_text = problem;
  request.solver.starts = 2;
  request.solver.iterations = 40;
  request.solver.seed = 3;
  request.cache = false;
  server.handle_line(format_request(request), log.sink());
  wait_for_results(log, 1);
  request.id = "optout-2";
  server.handle_line(format_request(request), log.sink());
  server.drain();

  const auto results = log.results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_FALSE(results[1].cache_hit);
  EXPECT_EQ(results[1].assignment, results[0].assignment);
  EXPECT_EQ(server.cache().stats().inserts, 0);
}

TEST(Server, InnerThreadsAreBitIdenticalEndToEnd) {
  // The same job spec at every inner_threads value must produce the same
  // assignment and objective, bit for bit -- the util/parallel contract
  // surfaced through protocol -> job -> engine -> solver.
  const std::string problem = tiny_problem_text(29);

  const auto run_one = [&](std::int32_t inner_threads) {
    ResponseLog log;
    ServerOptions options;
    options.thread_limit = 64;  // roomy budget: nothing gets clamped
    Server server(options);
    Request request;
    request.type = RequestType::kSubmit;
    request.id = "inner";
    request.problem_text = problem;
    request.solver.starts = 3;
    request.solver.iterations = 40;
    request.solver.seed = 7;
    request.solver.inner_threads = inner_threads;
    server.handle_line(format_request(request), log.sink());
    server.drain();
    const auto results = log.results();
    EXPECT_EQ(results.size(), 1u);
    return results.empty() ? JobResult{} : results.front();
  };

  const JobResult reference = run_one(1);
  ASSERT_EQ(reference.status, "ok");
  for (const std::int32_t inner : {2, 8}) {
    const JobResult got = run_one(inner);
    EXPECT_EQ(got.status, reference.status) << "inner_threads " << inner;
    EXPECT_EQ(got.objective, reference.objective) << "inner_threads " << inner;
    EXPECT_EQ(got.assignment, reference.assignment)
        << "inner_threads " << inner;
  }
}

TEST(Server, OversubscribedInnerThreadsAreClampedAndReported) {
  // workers x concurrent starts x inner_threads must fit thread_limit: a
  // spec asking for 2 x 2 x 8 = 32 leaf threads against a budget of 8 gets
  // inner_threads clamped to 8 / 2 workers / 2 concurrent starts = 2, and
  // the stats snapshot reports both the clamp and the pool gauge.
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.workers = 2;
  options.thread_limit = 8;
  Server server(options);

  Request request;
  request.type = RequestType::kSubmit;
  request.id = "greedy";
  request.problem_text = problem;
  request.solver.starts = 4;
  request.solver.threads = 2;
  request.solver.iterations = 10;
  request.solver.inner_threads = 8;
  server.handle_line(format_request(request), log.sink());
  server.drain();
  server.handle_line("{\"type\":\"stats\"}", log.sink());

  const auto results = log.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.front().status, "ok");

  json::Value stats;
  ASSERT_TRUE(json::parse(log.lines().back(), stats).ok);
  const json::Value* gauges = stats.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->get_number("inner_threads_effective", -1.0), 2.0);
  // The utilization gauge always exists; its value is a point-in-time
  // sample in [0, 100].
  const double utilization = gauges->get_number("pool_utilization", -1.0);
  EXPECT_GE(utilization, 0.0);
  EXPECT_LE(utilization, 100.0);
}

TEST(Server, PerJobValidateFlagShadowAuditsEveryStart) {
  // A submit carrying "validate": true must shadow-audit every start and
  // report the count; one without the flag must not pay for the audit.
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});

  Request audited;
  audited.type = RequestType::kSubmit;
  audited.id = "audited";
  audited.problem_text = problem;
  audited.solver.starts = 3;
  audited.solver.iterations = 40;
  audited.solver.validate = true;
  server.handle_line(format_request(audited), log.sink());
  server.handle_line(submit_line("plain", problem), log.sink());
  server.drain();

  auto results = log.results();
  ASSERT_EQ(results.size(), 2u);
  std::sort(results.begin(), results.end(),
            [](const JobResult& a, const JobResult& b) { return a.id < b.id; });
  EXPECT_EQ(results[0].id, "audited");
  EXPECT_EQ(results[0].status, "ok");
  EXPECT_EQ(results[0].starts_validated, 3);
  EXPECT_EQ(results[1].id, "plain");
  EXPECT_EQ(results[1].status, "ok");
  // Without the per-job flag the process-wide default applies: 0 audits in
  // a stock build, every start audited under -DQBPART_VALIDATE=ON.
  EXPECT_EQ(results[1].starts_validated, validation_enabled() ? 2 : 0);
}

TEST(Server, FifoWithinPriorityCompletionOrder) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.workers = 1;     // one worker => completion order == pop order
  options.autostart = false;  // stage everything first
  Server server(options);
  server.handle_line(submit_line("low-0", problem, 1, /*priority=*/0),
                     log.sink());
  server.handle_line(submit_line("high-0", problem, 2, /*priority=*/9),
                     log.sink());
  server.handle_line(submit_line("low-1", problem, 3, /*priority=*/0),
                     log.sink());
  server.handle_line(submit_line("high-1", problem, 4, /*priority=*/9),
                     log.sink());
  server.start();
  server.drain();

  const auto results = log.results();
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0].id, "high-0");
  EXPECT_EQ(results[1].id, "high-1");
  EXPECT_EQ(results[2].id, "low-0");
  EXPECT_EQ(results[3].id, "low-1");
}

TEST(Server, ExpiredDeadlineReportsDeadlineExceeded) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.autostart = false;
  Server server(options);
  // 1 microsecond: expired long before the (not yet started) workers pop it.
  server.handle_line(submit_line("doomed", problem, 1, 0, /*deadline_ms=*/0.001),
                     log.sink());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  server.start();
  server.drain();

  const auto results = log.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].id, "doomed");
  EXPECT_EQ(results[0].status, "deadline_exceeded");
  EXPECT_TRUE(results[0].assignment.empty());
  EXPECT_EQ(server.metrics().counter("jobs_deadline_exceeded").value(), 1);
}

TEST(Server, MidRunDeadlineCancelsCooperatively) {
  // A slow job: many SA starts on one thread, far beyond a 30 ms budget.
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});
  server.handle_line(submit_line("slow", problem, 1, 0, /*deadline_ms=*/30.0,
                                 /*starts=*/512, /*threads=*/1, "sa"),
                     log.sink());
  server.drain();

  const auto results = log.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, "deadline_exceeded");
}

TEST(Server, FullQueueRejectsWithBackpressure) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.queue_capacity = 2;
  options.autostart = false;  // nothing pops, so the queue stays full
  Server server(options);
  server.handle_line(submit_line("a", problem), log.sink());
  server.handle_line(submit_line("b", problem), log.sink());
  server.handle_line(submit_line("c", problem), log.sink());
  EXPECT_EQ(log.count("\"type\":\"reject\""), 1u);
  EXPECT_EQ(log.count("queue full (capacity 2)"), 1u);
  EXPECT_EQ(server.metrics().counter("jobs_rejected").value(), 1);
  server.drain();  // a and b still complete
  EXPECT_EQ(log.results().size(), 2u);
}

TEST(Server, CancelQueuedJobAnswersCancelled) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.autostart = false;
  Server server(options);
  server.handle_line(submit_line("keep", problem), log.sink());
  server.handle_line(submit_line("kill", problem), log.sink());
  server.handle_line("{\"type\":\"cancel\",\"id\":\"kill\"}", log.sink());
  server.handle_line("{\"type\":\"cancel\",\"id\":\"nonexistent\"}",
                     log.sink());
  server.start();
  server.drain();

  const auto results = log.results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(log.count("\"status\":\"cancelled\""), 1u);
  EXPECT_EQ(log.count("unknown job id"), 1u);
  EXPECT_EQ(server.metrics().counter("jobs_cancelled").value(), 1);
}

TEST(Server, DrainingServerRejectsNewSubmits) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});
  server.begin_drain();
  server.handle_line(submit_line("late", problem), log.sink());
  EXPECT_EQ(log.count("server draining"), 1u);
  server.drain();
  EXPECT_EQ(log.results().size(), 0u);
}

TEST(Server, MalformedLinesAndBadProblemsAreContained) {
  ResponseLog log;
  Server server(ServerOptions{});
  server.handle_line("this is not json", log.sink());
  server.handle_line("{\"type\":\"submit\"}", log.sink());
  // Valid request, garbage problem text: must come back status "error",
  // not crash the worker.
  server.handle_line(submit_line("bad", "wibble wobble\n"), log.sink());
  server.drain();
  EXPECT_EQ(log.count("\"type\":\"error\""), 2u);
  EXPECT_EQ(log.count("\"status\":\"error\""), 1u);
  EXPECT_EQ(server.metrics().counter("requests_malformed").value(), 2);
  EXPECT_EQ(server.metrics().counter("jobs_error").value(), 1);
}

TEST(Server, DuplicateActiveIdRejected) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  ServerOptions options;
  options.autostart = false;
  Server server(options);
  server.handle_line(submit_line("dup", problem), log.sink());
  server.handle_line(submit_line("dup", problem), log.sink());
  EXPECT_EQ(log.count("duplicate id"), 1u);
  server.drain();
  EXPECT_EQ(log.results().size(), 1u);
}

TEST(Server, StatsRequestReportsCountersAndHistograms) {
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  Server server(ServerOptions{});
  server.handle_line(submit_line("s1", problem), log.sink());
  server.drain();
  server.handle_line("{\"type\":\"stats\"}", log.sink());

  json::Value stats;
  ASSERT_TRUE(json::parse(log.lines().back(), stats).ok);
  EXPECT_EQ(stats.get_string("type", ""), "stats");
  EXPECT_GE(stats.get_number("uptime_s", -1.0), 0.0);
  const json::Value* counters = stats.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->get_number("jobs_completed", 0), 1.0);
  const json::Value* histograms = stats.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* solve = histograms->find("solve_seconds");
  ASSERT_NE(solve, nullptr);
  EXPECT_EQ(solve->get_number("count", 0), 1.0);
}

TEST(Server, PhaseProfilerSurfacesHistogramsInStats) {
  // With the phase profiler on (qbpartd --profile), each job's per-phase
  // time deltas land in phase_seconds.* histograms in the stats snapshot.
  prof::set_enabled(true);
  prof::reset();
  const std::string problem = tiny_problem_text();
  ResponseLog log;
  {
    Server server(ServerOptions{});
    server.handle_line(submit_line("p1", problem), log.sink());
    server.handle_line(submit_line("p2", problem, /*seed=*/2), log.sink());
    server.drain();
    server.handle_line("{\"type\":\"stats\"}", log.sink());
  }
  prof::set_enabled(false);
  prof::reset();

  json::Value stats;
  ASSERT_TRUE(json::parse(log.lines().back(), stats).ok);
  const json::Value* histograms = stats.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* starts = histograms->find("phase_seconds.portfolio.start");
  ASSERT_NE(starts, nullptr);
  EXPECT_EQ(starts->get_number("count", 0), 2.0);  // one observation per job
  const json::Value* gap = histograms->find("phase_seconds.burkard.step6_gap");
  ASSERT_NE(gap, nullptr);
  EXPECT_EQ(gap->get_number("count", 0), 2.0);
}

TEST(Server, ShutdownRequestFlagsTheServeLoop) {
  ResponseLog log;
  Server server(ServerOptions{});
  EXPECT_FALSE(server.shutdown_requested());
  server.handle_line("{\"type\":\"shutdown\"}", log.sink());
  EXPECT_TRUE(server.shutdown_requested());
  EXPECT_EQ(log.count("\"type\":\"shutdown\""), 1u);
  server.drain();
}

// ------------------------------------------------------------ metrics ----

TEST(Metrics, HistogramBucketsAreCumulativeInJson) {
  MetricsRegistry registry;
  auto& histogram = registry.histogram("h", Histogram::latency_bounds());
  histogram.observe(0.0005);  // below the first bound
  histogram.observe(0.003);
  histogram.observe(100.0);  // beyond the last bound -> +inf bucket

  const auto snapshot = histogram.snapshot();
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.0005);
  EXPECT_DOUBLE_EQ(snapshot.max, 100.0);

  const json::Value rendered = registry.to_json();
  const json::Value* h = rendered.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  const json::Value* buckets = h->find("buckets");
  ASSERT_NE(buckets, nullptr);
  // Cumulative: every bucket count <= the next, final bucket is the total.
  double previous = 0.0;
  for (std::size_t k = 0; k < buckets->size(); ++k) {
    const double count = buckets->at(k).get_number("count", -1.0);
    EXPECT_GE(count, previous);
    previous = count;
  }
  EXPECT_DOUBLE_EQ(previous, 3.0);
}

TEST(Metrics, RegistryReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& first = registry.counter("x");
  first.inc();
  Counter& again = registry.counter("x");
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.value(), 1);
}

}  // namespace
}  // namespace qbp::service
