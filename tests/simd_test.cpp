// util/simd.hpp contract tests: every kernel must be bit-identical to its
// scalar fallback (the repo-wide determinism contract extends to SIMD
// on/off, which is what lets CI gate "same objectives with the vector path
// forced off").
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/rng.hpp"
#include "util/simd.hpp"

namespace qbp {
namespace {

/// Runs `body` twice -- vector path enabled, then forced off -- restoring
/// the process-wide toggle afterwards.
template <typename Body>
void with_both_paths(const Body& body) {
  const bool was_enabled = simd::enabled();
  simd::set_enabled(true);
  body();
  simd::set_enabled(false);
  body();
  simd::set_enabled(was_enabled);
}

std::vector<double> random_doubles(Rng& rng, std::size_t n, double lo,
                                   double hi) {
  std::vector<double> values(n);
  for (double& v : values) v = rng.next_double(lo, hi);
  return values;
}

TEST(Simd, ActiveKernelReflectsToggle) {
  const bool was_enabled = simd::enabled();
  simd::set_enabled(false);
  EXPECT_STREQ(simd::active_kernel(), "scalar");
  simd::set_enabled(true);
  if (simd::vector_supported()) {
    EXPECT_STREQ(simd::active_kernel(), "avx2");
  } else {
    EXPECT_STREQ(simd::active_kernel(), "scalar");
  }
  simd::set_enabled(was_enabled);
}

TEST(Simd, AxpyMatchesScalarBitForBit) {
  Rng rng(0x51de);
  // Odd lengths exercise the vector body plus its scalar tail; length < 4
  // is tail-only.
  for (const std::int64_t n : {1, 3, 4, 7, 16, 33, 1021}) {
    const auto x = random_doubles(rng, static_cast<std::size_t>(n), -3.0, 3.0);
    const auto y0 = random_doubles(rng, static_cast<std::size_t>(n), -3.0, 3.0);
    const double a = rng.next_double(-2.0, 2.0);

    std::vector<double> reference = y0;
    for (std::int64_t i = 0; i < n; ++i) reference[i] += a * x[i];

    with_both_paths([&] {
      std::vector<double> y = y0;
      simd::axpy(a, x.data(), y.data(), n);
      for (std::int64_t i = 0; i < n; ++i) {
        // Bit-identical, not just close: compare without tolerance.
        EXPECT_EQ(y[i], reference[i]) << "n=" << n << " i=" << i;
      }
    });
  }
}

TEST(Simd, SwapProfitScanMatchesScalarFirstHit) {
  Rng rng(0xacc5);
  constexpr std::int32_t kAgents = 16;
  for (const std::int64_t n : {1, 5, 8, 64, 1000}) {
    const auto masked = random_doubles(rng, kAgents, 0.0, 10.0);
    const auto row = random_doubles(rng, static_cast<std::size_t>(n), 0.0, 10.0);
    const auto assigned =
        random_doubles(rng, static_cast<std::size_t>(n), 0.0, 10.0);
    std::vector<std::int32_t> agent(static_cast<std::size_t>(n));
    for (auto& a : agent) {
      a = static_cast<std::int32_t>(rng.next_below(kAgents));
    }
    // Sweep c11 so some sweeps have no hit, early hits, and late hits.
    for (const double c11 : {-100.0, 0.0, 5.0, 10.0, 30.0}) {
      const auto reference = [&](std::int64_t begin) -> std::int64_t {
        for (std::int64_t j = begin; j < n; ++j) {
          double delta = masked[static_cast<std::size_t>(agent[j])];
          delta += row[j];
          delta -= c11;
          delta -= assigned[j];
          if (delta < -1e-12) return j;
        }
        return -1;
      };
      for (const std::int64_t begin : {std::int64_t{0}, n / 2, n - 1}) {
        const std::int64_t expected = reference(begin);
        with_both_paths([&] {
          EXPECT_EQ(simd::swap_profit_scan(masked.data(), agent.data(),
                                           row.data(), assigned.data(), c11,
                                           -1e-12, begin, n),
                    expected)
              << "n=" << n << " c11=" << c11 << " begin=" << begin;
        });
      }
    }
  }
}

TEST(Simd, SwapProfitScanHandlesInfinityMask) {
  // The GAP scan masks the current agent's entry with +inf; the resulting
  // +inf delta must never fire, in either path.
  constexpr std::int64_t kN = 9;
  std::vector<double> masked(4, 1.0);
  masked[2] = std::numeric_limits<double>::infinity();
  std::vector<std::int32_t> agent(kN, 2);  // all point at the masked slot
  std::vector<double> row(kN, -100.0);     // would fire without the mask
  std::vector<double> assigned(kN, 0.0);
  with_both_paths([&] {
    EXPECT_EQ(simd::swap_profit_scan(masked.data(), agent.data(), row.data(),
                                     assigned.data(), 0.0, -1e-12, 0, kN),
              -1);
  });
}

}  // namespace
}  // namespace qbp
