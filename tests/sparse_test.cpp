#include <gtest/gtest.h>

#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

// ---------------------------------------------------------------- Csr ----

Csr<int> make_example() {
  // 3 x 4:
  //   [ 1 0 2 0 ]
  //   [ 0 0 0 3 ]
  //   [ 4 0 0 0 ]
  return Csr<int>::from_triplets(
      3, 4, {{0, 0, 1}, {0, 2, 2}, {1, 3, 3}, {2, 0, 4}});
}

TEST(Csr, ShapeAndNonzeros) {
  const auto matrix = make_example();
  EXPECT_EQ(matrix.rows(), 3);
  EXPECT_EQ(matrix.cols(), 4);
  EXPECT_EQ(matrix.nonzeros(), 4u);
}

TEST(Csr, RowAccessSortedByColumn) {
  const auto matrix = Csr<int>::from_triplets(1, 5, {{0, 4, 1}, {0, 1, 2}, {0, 3, 3}});
  const auto cols = matrix.row_indices(0);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 1);
  EXPECT_EQ(cols[1], 3);
  EXPECT_EQ(cols[2], 4);
  const auto values = matrix.row_values(0);
  EXPECT_EQ(values[0], 2);
  EXPECT_EQ(values[1], 3);
  EXPECT_EQ(values[2], 1);
}

TEST(Csr, DuplicateTripletsCombineByAddition) {
  const auto matrix = Csr<int>::from_triplets(2, 2, {{0, 1, 3}, {0, 1, 4}});
  EXPECT_EQ(matrix.nonzeros(), 1u);
  EXPECT_EQ(matrix.value_or(0, 1, 0), 7);
}

TEST(Csr, ValueOrFallback) {
  const auto matrix = make_example();
  EXPECT_EQ(matrix.value_or(0, 0, -1), 1);
  EXPECT_EQ(matrix.value_or(0, 1, -1), -1);
  EXPECT_EQ(matrix.value_or(2, 3, -1), -1);
}

TEST(Csr, Contains) {
  const auto matrix = make_example();
  EXPECT_TRUE(matrix.contains(1, 3));
  EXPECT_FALSE(matrix.contains(1, 0));
}

TEST(Csr, EmptyRows) {
  const auto matrix = Csr<int>::from_triplets(3, 3, {{0, 0, 1}});
  EXPECT_TRUE(matrix.row_indices(1).empty());
  EXPECT_TRUE(matrix.row_indices(2).empty());
}

TEST(Csr, Transposed) {
  const auto matrix = make_example();
  const auto t = matrix.transposed();
  EXPECT_EQ(t.rows(), 4);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.value_or(0, 0, 0), 1);
  EXPECT_EQ(t.value_or(0, 2, 0), 4);
  EXPECT_EQ(t.value_or(3, 1, 0), 3);
  EXPECT_EQ(t.nonzeros(), matrix.nonzeros());
}

TEST(Csr, TransposeTwiceIsIdentity) {
  const auto matrix = make_example();
  EXPECT_EQ(matrix.transposed().transposed(), matrix);
}

TEST(Csr, SymmetrizedAddsTranspose) {
  const auto matrix = Csr<int>::from_triplets(2, 2, {{0, 1, 5}});
  const auto sym = matrix.symmetrized();
  EXPECT_EQ(sym.value_or(0, 1, 0), 5);
  EXPECT_EQ(sym.value_or(1, 0, 0), 5);
}

TEST(Csr, SymmetrizedDoublesDiagonal) {
  const auto matrix = Csr<int>::from_triplets(2, 2, {{0, 0, 3}});
  EXPECT_EQ(matrix.symmetrized().value_or(0, 0, 0), 6);
}

TEST(Csr, PrunedDropsZeros) {
  const auto matrix = Csr<int>::from_triplets(2, 2, {{0, 0, 1}, {0, 1, -1}, {1, 1, 1}});
  // Add a cancelling duplicate so one stored entry becomes zero.
  const auto with_zero =
      Csr<int>::from_triplets(2, 2, {{0, 1, 1}, {0, 1, -1}, {1, 1, 2}});
  EXPECT_EQ(with_zero.nonzeros(), 2u);  // zero-valued entry is kept
  EXPECT_EQ(with_zero.pruned().nonzeros(), 1u);
  (void)matrix;
}

TEST(Csr, SumAndAbsSum) {
  const auto matrix = Csr<double>::from_triplets(2, 2, {{0, 0, 1.5}, {1, 0, -2.5}});
  EXPECT_DOUBLE_EQ(matrix.sum(), -1.0);
  EXPECT_DOUBLE_EQ(matrix.abs_sum(), 4.0);
}

TEST(Csr, ForEachVisitsAllEntriesInRowMajorOrder) {
  const auto matrix = make_example();
  std::vector<std::pair<int, int>> visited;
  matrix.for_each([&](std::int32_t r, std::int32_t c, int) {
    visited.emplace_back(r, c);
  });
  const std::vector<std::pair<int, int>> expected{{0, 0}, {0, 2}, {1, 3}, {2, 0}};
  EXPECT_EQ(visited, expected);
}

TEST(Csr, EmptyMatrix) {
  const auto matrix = Csr<int>::from_triplets(0, 0, {});
  EXPECT_EQ(matrix.rows(), 0);
  EXPECT_EQ(matrix.nonzeros(), 0u);
  EXPECT_EQ(matrix.sum(), 0);
}

TEST(Csr, LargeRandomRoundTrip) {
  Rng rng(77);
  std::vector<Triplet<double>> triplets;
  for (int k = 0; k < 500; ++k) {
    triplets.push_back({static_cast<std::int32_t>(rng.next_below(40)),
                        static_cast<std::int32_t>(rng.next_below(40)),
                        rng.next_double(0.1, 2.0)});
  }
  const auto matrix = Csr<double>::from_triplets(40, 40, triplets);
  // Sum is invariant under transposition and duplicate combination.
  EXPECT_NEAR(matrix.sum(), matrix.transposed().sum(), 1e-9);
  double triplet_sum = 0.0;
  for (const auto& t : triplets) triplet_sum += t.value;
  EXPECT_NEAR(matrix.sum(), triplet_sum, 1e-9);
}

// ------------------------------------------------------------- Matrix ----

TEST(Matrix, ConstructionAndIndexing) {
  Matrix<double> matrix(2, 3, 1.5);
  EXPECT_EQ(matrix.rows(), 2);
  EXPECT_EQ(matrix.cols(), 3);
  EXPECT_DOUBLE_EQ(matrix(1, 2), 1.5);
  matrix(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(matrix(1, 2), -4.0);
}

TEST(Matrix, FromRows) {
  const auto matrix = Matrix<int>::from_rows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(matrix.rows(), 3);
  EXPECT_EQ(matrix.cols(), 2);
  EXPECT_EQ(matrix(2, 1), 6);
}

TEST(Matrix, RowSpanWritesThrough) {
  Matrix<int> matrix(2, 2, 0);
  auto row = matrix.row(1);
  row[0] = 9;
  EXPECT_EQ(matrix(1, 0), 9);
}

TEST(Matrix, Fill) {
  Matrix<int> matrix(2, 2, 1);
  matrix.fill(7);
  EXPECT_EQ(matrix(0, 0), 7);
  EXPECT_EQ(matrix(1, 1), 7);
}

TEST(Matrix, Transposed) {
  const auto matrix = Matrix<int>::from_rows({{1, 2, 3}, {4, 5, 6}});
  const auto t = matrix.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t(2, 1), 6);
  EXPECT_EQ(t(0, 0), 1);
}

TEST(Matrix, IsSymmetric) {
  EXPECT_TRUE(Matrix<int>::from_rows({{0, 1}, {1, 0}}).is_symmetric());
  EXPECT_FALSE(Matrix<int>::from_rows({{0, 1}, {2, 0}}).is_symmetric());
  EXPECT_FALSE(Matrix<int>::from_rows({{0, 1, 2}, {1, 0, 3}}).is_symmetric());
}

TEST(Matrix, EqualityAndEmpty) {
  const Matrix<int> a(2, 2, 1);
  const Matrix<int> b(2, 2, 1);
  Matrix<int> c(2, 2, 1);
  c(0, 1) = 2;
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_TRUE(Matrix<int>().empty());
  EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace qbp
