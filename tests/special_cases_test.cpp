#include <gtest/gtest.h>

#include "assign/gap.hpp"
#include "assign/lap.hpp"
#include "core/brute_force.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "bench_support/circuits.hpp"
#include "core/special_cases.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

// ----------------------------------------------------------------- QAP ----

TEST(SpecialCases, QapAssignmentsArePermutations) {
  Matrix<std::int32_t> flow(4, 4, 0);
  flow(0, 1) = 3;
  flow(2, 3) = 2;
  Matrix<double> distance(4, 4, 0.0);
  for (std::int32_t a = 0; a < 4; ++a) {
    for (std::int32_t b = 0; b < 4; ++b) distance(a, b) = std::abs(a - b);
  }
  const auto problem = make_qap_problem(flow, distance);
  EXPECT_EQ(problem.num_partitions(), 4);
  EXPECT_EQ(problem.num_components(), 4);

  const auto exact = brute_force_constrained(problem);
  ASSERT_TRUE(exact.found);
  EXPECT_EQ(exact.feasible_count, 24);  // 4! permutations
  // Optimal: put 0,1 adjacent and 2,3 adjacent: cost 2*(3*1 + 2*1) = 10.
  EXPECT_DOUBLE_EQ(exact.value, 10.0);
}

class QapSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QapSweep, QbpSolvesSmallQapsToOptimum) {
  Rng rng(GetParam());
  const std::int32_t n = 5;
  Matrix<std::int32_t> flow(n, n, 0);
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = a + 1; b < n; ++b) {
      if (rng.next_bool(0.6)) {
        flow(a, b) = static_cast<std::int32_t>(rng.next_int(1, 8));
      }
    }
  }
  Matrix<double> distance(n, n, 0.0);
  for (std::int32_t a = 0; a < n; ++a) {
    for (std::int32_t b = 0; b < n; ++b) distance(a, b) = std::abs(a - b);
  }
  const auto problem = make_qap_problem(flow, distance);
  const auto exact = brute_force_constrained(problem);
  ASSERT_TRUE(exact.found);

  BurkardOptions options;
  options.iterations = 120;
  options.gap_step6.swap_improvement = true;
  const auto initial =
      make_initial(problem, InitialStrategy::kGreedyBalanced, GetParam());
  const auto result = solve_qbp(problem, initial.assignment, options);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_NEAR(result.best_feasible_objective, exact.value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QapSweep, ::testing::Range<std::uint64_t>(1, 7));

// ----------------------------------------------------------------- LAP ----

class LapReductionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LapReductionSweep, MatchesDedicatedLapSolver) {
  Rng rng(GetParam());
  const std::int32_t n = 5;
  Matrix<double> cost(n, n, 0.0);
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      cost(i, j) = static_cast<double>(rng.next_int(0, 20));
    }
  }
  const auto problem = make_lap_problem(cost);
  const auto exact = brute_force_constrained(problem);
  ASSERT_TRUE(exact.found);
  EXPECT_NEAR(exact.value, solve_lap(cost).cost, 1e-9);

  BurkardOptions options;
  options.iterations = 80;
  options.gap_step6.swap_improvement = true;
  const auto initial =
      make_initial(problem, InitialStrategy::kGreedyBalanced, GetParam());
  const auto result = solve_qbp(problem, initial.assignment, options);
  ASSERT_TRUE(result.found_feasible);
  EXPECT_NEAR(result.best_feasible_objective, exact.value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LapReductionSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

// ----------------------------------------------------------------- GAP ----

TEST(SpecialCases, GapReductionMatchesDedicatedSolverSemantics) {
  Rng rng(9);
  const std::int32_t m = 3;
  const std::int32_t n = 7;
  Matrix<double> cost(m, n, 0.0);
  std::vector<double> sizes(static_cast<std::size_t>(n));
  for (auto& s : sizes) s = rng.next_double(0.5, 2.0);
  double total = 0.0;
  for (const double s : sizes) total += s;
  const std::vector<double> capacities(static_cast<std::size_t>(m),
                                       total / m * 1.6);
  for (std::int32_t i = 0; i < m; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      cost(i, j) = static_cast<double>(rng.next_int(0, 25));
    }
  }
  const auto problem = make_gap_problem(cost, sizes, capacities);
  EXPECT_EQ(problem.num_partitions(), 3);
  EXPECT_DOUBLE_EQ(problem.beta(), 0.0);

  // Feasibility semantics match the dedicated GAP checker.
  GapProblem gap;
  gap.cost = cost;
  gap.sizes = sizes;
  gap.capacities = capacities;
  Rng walk(11);
  for (int trial = 0; trial < 30; ++trial) {
    const auto assignment = test::random_complete(n, m, walk);
    std::vector<std::int32_t> agents(static_cast<std::size_t>(n));
    for (std::int32_t j = 0; j < n; ++j) agents[static_cast<std::size_t>(j)] = assignment[j];
    EXPECT_EQ(problem.satisfies_capacity(assignment),
              gap_feasible(gap, agents));
    EXPECT_NEAR(problem.objective(assignment), gap_cost(gap, agents), 1e-9);
  }
}

// ----------------------------------------------- multistart and budget ----

TEST(Multistart, AtLeastAsGoodAsSingleRun) {
  const auto problem = test::make_tiny_problem({.seed = 8});
  if (!brute_force_constrained(problem).found) GTEST_SKIP();
  BurkardOptions options;
  options.iterations = 20;
  const auto single = solve_qbp_multistart(problem, 1, 7, options);
  const auto multi = solve_qbp_multistart(problem, 5, 7, options);
  ASSERT_TRUE(multi.found_feasible);
  if (single.found_feasible) {
    EXPECT_LE(multi.best_feasible_objective,
              single.best_feasible_objective + 1e-9);
  }
}

TEST(Multistart, DeterministicInSeed) {
  const auto problem = test::make_tiny_problem({.seed = 9});
  BurkardOptions options;
  options.iterations = 15;
  const auto a = solve_qbp_multistart(problem, 3, 21, options);
  const auto b = solve_qbp_multistart(problem, 3, 21, options);
  EXPECT_EQ(a.best, b.best);
  EXPECT_DOUBLE_EQ(a.best_penalized, b.best_penalized);
}

TEST(TimeBudget, StopsEarly) {
  // A generous iteration count with a tiny wall budget must stop well
  // short of the iteration limit.
  const auto instance = make_circuit(*find_preset("cktb"));
  const auto initial = make_initial(instance.problem,
                                    InitialStrategy::kGreedyBalanced, 1);
  BurkardOptions options;
  options.iterations = 100000;
  options.time_budget_seconds = 0.05;
  const auto result = solve_qbp(instance.problem, initial.assignment, options);
  EXPECT_LT(result.iterations_run, 100000);
  EXPECT_GE(result.iterations_run, 1);
}

}  // namespace
}  // namespace qbp
