// Shared helpers for the qbpart test suite: deterministic tiny random
// problem instances sized for the brute-force oracle.
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"
#include "netlist/netlist.hpp"
#include "partition/topology.hpp"
#include "timing/constraints.hpp"
#include "util/rng.hpp"

namespace qbp::test {

struct TinySpec {
  std::int32_t num_components = 6;
  std::int32_t num_partitions = 3;
  double wire_probability = 0.5;
  double constraint_probability = 0.3;
  /// Per-partition capacity as a multiple of (total size / M); > 1 needed
  /// for feasibility headroom.
  double capacity_factor = 1.6;
  bool with_linear_term = false;
  std::uint64_t seed = 1;
};

/// A random small PP(1,1) instance on a 1 x M "row" topology (Manhattan
/// distances |i1 - i2|), suitable for brute force (M^N <= ~1e5).
/// Timing bounds are drawn in [1, M-1], so instances are usually but not
/// always feasible -- callers that need feasibility should check
/// brute_force_constrained(...).found.
inline PartitionProblem make_tiny_problem(const TinySpec& spec) {
  Rng rng(spec.seed);
  Netlist netlist("tiny");
  for (std::int32_t j = 0; j < spec.num_components; ++j) {
    std::string name = "c";
    name += std::to_string(j);
    netlist.add_component(name, rng.next_double(0.5, 3.0));
  }
  for (std::int32_t a = 0; a < spec.num_components; ++a) {
    for (std::int32_t b = a + 1; b < spec.num_components; ++b) {
      if (rng.next_bool(spec.wire_probability)) {
        netlist.add_wires(a, b, static_cast<std::int32_t>(rng.next_int(1, 4)));
      }
    }
  }

  const std::int32_t m = spec.num_partitions;
  PartitionTopology topology = PartitionTopology::grid(1, m, CostKind::kManhattan);
  const double capacity =
      netlist.total_size() / m * spec.capacity_factor;
  for (PartitionId i = 0; i < m; ++i) topology.set_capacity(i, capacity);

  TimingConstraints timing(spec.num_components);
  if (m > 1) {
    for (std::int32_t a = 0; a < spec.num_components; ++a) {
      for (std::int32_t b = a + 1; b < spec.num_components; ++b) {
        if (rng.next_bool(spec.constraint_probability)) {
          timing.add(a, b, static_cast<double>(rng.next_int(1, m - 1)));
        }
      }
    }
  }

  Matrix<double> p;
  if (spec.with_linear_term) {
    p = Matrix<double>(m, spec.num_components, 0.0);
    for (PartitionId i = 0; i < m; ++i) {
      for (std::int32_t j = 0; j < spec.num_components; ++j) {
        p(i, j) = rng.next_double(0.0, 5.0);
      }
    }
  }

  return PartitionProblem(std::move(netlist), std::move(topology),
                          std::move(timing), std::move(p));
}

/// A deterministic complete assignment (round-robin), not necessarily
/// feasible.
inline Assignment round_robin(std::int32_t num_components,
                              std::int32_t num_partitions) {
  Assignment assignment(num_components, num_partitions);
  for (std::int32_t j = 0; j < num_components; ++j) {
    assignment.set(j, j % num_partitions);
  }
  return assignment;
}

/// A random complete assignment.
inline Assignment random_complete(std::int32_t num_components,
                                  std::int32_t num_partitions, Rng& rng) {
  Assignment assignment(num_components, num_partitions);
  for (std::int32_t j = 0; j < num_components; ++j) {
    assignment.set(j, static_cast<PartitionId>(
                          rng.next_below(static_cast<std::uint64_t>(num_partitions))));
  }
  return assignment;
}

/// The Section 3.3 worked example (3 components, 2 x 2 grid, 5 + 2 wires,
/// adjacency constraints on a-b and b-c); `capacity` defaults to the
/// unconstrained setting.
inline PartitionProblem make_paper_example(double capacity = 3.0) {
  Netlist netlist("paper-3.3");
  const auto a = netlist.add_component("a", 1.0);
  const auto b = netlist.add_component("b", 1.0);
  const auto c = netlist.add_component("c", 1.0);
  netlist.add_wires(a, b, 5);
  netlist.add_wires(b, c, 2);
  PartitionTopology topology =
      PartitionTopology::grid(2, 2, CostKind::kManhattan, capacity);
  TimingConstraints timing(3);
  timing.add(a, b, 1.0);
  timing.add(b, c, 1.0);
  return PartitionProblem(std::move(netlist), std::move(topology),
                          std::move(timing));
}

}  // namespace qbp::test
