#include <gtest/gtest.h>

#include "netlist/generator.hpp"
#include "partition/topology.hpp"
#include "test_support.hpp"
#include "timing/constraints.hpp"
#include "timing/timing_graph.hpp"

namespace qbp {
namespace {

Netlist chain_netlist(std::int32_t n) {
  Netlist netlist("chain");
  for (std::int32_t j = 0; j < n; ++j) netlist.add_component("c", 1.0);
  for (std::int32_t j = 0; j + 1 < n; ++j) netlist.add_wires(j, j + 1, 1);
  return netlist;
}

// --------------------------------------------------------- TimingGraph ----

TEST(TimingGraph, ArcsFollowRankOrder) {
  const auto netlist = chain_netlist(6);
  const std::vector<double> delays(6, 1.0);
  const auto graph = TimingGraph::build(netlist, delays, 7);
  for (const auto& arc : graph.arcs()) {
    EXPECT_LT(graph.rank()[arc.from], graph.rank()[arc.to]);
  }
  EXPECT_EQ(graph.arcs().size(), 5u);
}

TEST(TimingGraph, UpDownConsistentWithCriticalPath) {
  const auto netlist = chain_netlist(8);
  const std::vector<double> delays(8, 2.0);
  const auto graph = TimingGraph::build(netlist, delays, 3);
  // up + down double counts the node itself.
  for (std::int32_t v = 0; v < 8; ++v) {
    EXPECT_LE(graph.up(v) + graph.down(v) - 2.0, graph.critical_path() + 1e-9);
    EXPECT_GE(graph.up(v), 2.0);
    EXPECT_GE(graph.down(v), 2.0);
  }
  EXPECT_GT(graph.critical_path(), 0.0);
}

TEST(TimingGraph, CriticalPathOfChainWhenRankMatchesOrder) {
  // Build with many seeds; for a chain the longest up() is at most the sum
  // of all delays and at least the max single delay.
  const auto netlist = chain_netlist(5);
  const std::vector<double> delays{1.0, 2.0, 3.0, 4.0, 5.0};
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto graph = TimingGraph::build(netlist, delays, seed);
    EXPECT_LE(graph.critical_path(), 15.0 + 1e-9);
    EXPECT_GE(graph.critical_path(), 5.0);
  }
}

TEST(TimingGraph, ArcPathDelayAndSlack) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_wires(0, 1, 1);
  const std::vector<double> delays{3.0, 4.0};
  const auto graph = TimingGraph::build(netlist, delays, 1);
  ASSERT_EQ(graph.arcs().size(), 1u);
  const auto& arc = graph.arcs().front();
  EXPECT_DOUBLE_EQ(graph.arc_path_delay(arc), 7.0);
  EXPECT_DOUBLE_EQ(graph.arc_slack(arc, 10.0), 3.0);
}

TEST(TimingGraph, DeterministicInSeed) {
  const auto netlist = chain_netlist(10);
  const std::vector<double> delays(10, 1.0);
  const auto a = TimingGraph::build(netlist, delays, 42);
  const auto b = TimingGraph::build(netlist, delays, 42);
  EXPECT_EQ(a.rank(), b.rank());
  EXPECT_DOUBLE_EQ(a.critical_path(), b.critical_path());
}

TEST(TimingGraph, IsolatedComponentHasOwnDelayOnly) {
  Netlist netlist;
  netlist.add_component("a", 1.0);
  netlist.add_component("b", 1.0);
  netlist.add_component("lone", 1.0);
  netlist.add_wires(0, 1, 1);
  const std::vector<double> delays{1.0, 1.0, 5.0};
  const auto graph = TimingGraph::build(netlist, delays, 1);
  EXPECT_DOUBLE_EQ(graph.up(2), 5.0);
  EXPECT_DOUBLE_EQ(graph.down(2), 5.0);
}

// --------------------------------------------------- TimingConstraints ----

TEST(Constraints, SymmetricStorageAndCount) {
  TimingConstraints constraints(4);
  constraints.add(0, 2, 1.5);
  constraints.add(3, 1, 2.0);
  EXPECT_EQ(constraints.count(), 2);
  EXPECT_DOUBLE_EQ(constraints.max_delay(0, 2), 1.5);
  EXPECT_DOUBLE_EQ(constraints.max_delay(2, 0), 1.5);
  EXPECT_DOUBLE_EQ(constraints.max_delay(1, 3), 2.0);
  EXPECT_EQ(constraints.max_delay(0, 1), TimingConstraints::kUnconstrained);
}

TEST(Constraints, DuplicateAddsKeepTightest) {
  TimingConstraints constraints(3);
  constraints.add(0, 1, 3.0);
  constraints.add(1, 0, 1.0);
  constraints.add(0, 1, 2.0);
  EXPECT_EQ(constraints.count(), 1);
  EXPECT_DOUBLE_EQ(constraints.max_delay(0, 1), 1.0);
}

TEST(Constraints, ViolationsCountsUnorderedPairs) {
  const auto topo = PartitionTopology::grid(1, 4, CostKind::kManhattan);
  TimingConstraints constraints(3);
  constraints.add(0, 1, 1.0);
  constraints.add(1, 2, 1.0);
  Assignment assignment(3, 4);
  assignment.set(0, 0);
  assignment.set(1, 3);  // distance 3 > 1: violated
  assignment.set(2, 3);  // distance 0 <= 1: ok
  EXPECT_EQ(constraints.violations(assignment, topo), 1);
  EXPECT_FALSE(constraints.is_feasible(assignment, topo));
  assignment.set(1, 1);
  EXPECT_EQ(constraints.violations(assignment, topo), 1);  // now 1-2 violated
  assignment.set(2, 2);
  EXPECT_EQ(constraints.violations(assignment, topo), 0);
  EXPECT_TRUE(constraints.is_feasible(assignment, topo));
}

TEST(Constraints, UnassignedPartnersIgnored) {
  const auto topo = PartitionTopology::grid(1, 4, CostKind::kManhattan);
  TimingConstraints constraints(2);
  constraints.add(0, 1, 1.0);
  Assignment assignment(2, 4);
  assignment.set(0, 0);
  EXPECT_EQ(constraints.violations(assignment, topo), 0);
  EXPECT_TRUE(constraints.component_feasible_at(assignment, topo, 0, 3));
}

TEST(Constraints, ComponentFeasibleAt) {
  const auto topo = PartitionTopology::grid(1, 4, CostKind::kManhattan);
  TimingConstraints constraints(3);
  constraints.add(0, 1, 1.0);
  constraints.add(0, 2, 2.0);
  Assignment assignment(3, 4);
  assignment.set(0, 0);
  assignment.set(1, 1);
  assignment.set(2, 2);
  EXPECT_TRUE(constraints.component_feasible_at(assignment, topo, 0, 0));
  EXPECT_TRUE(constraints.component_feasible_at(assignment, topo, 0, 1));
  // At partition 3: distance to 1 is 2 > 1 -> infeasible.
  EXPECT_FALSE(constraints.component_feasible_at(assignment, topo, 0, 3));
}

TEST(Constraints, ComponentFeasibleAtWithOverride) {
  const auto topo = PartitionTopology::grid(1, 4, CostKind::kManhattan);
  TimingConstraints constraints(2);
  constraints.add(0, 1, 1.0);
  Assignment assignment(2, 4);
  assignment.set(0, 0);
  assignment.set(1, 3);
  // Swap evaluation: 0 -> 3 while 1 -> 0 keeps |3 - 0| = 3 violated.
  EXPECT_FALSE(constraints.component_feasible_at(assignment, topo, 0, 3, 1, 0));
  // 0 -> 2 while 1 -> 3 is distance 1: ok.
  EXPECT_TRUE(constraints.component_feasible_at(assignment, topo, 0, 2, 1, 3));
}

TEST(Constraints, EmptyConstraintsAlwaysFeasible) {
  const auto topo = PartitionTopology::grid(2, 2, CostKind::kManhattan);
  TimingConstraints constraints(5);
  EXPECT_TRUE(constraints.empty());
  Assignment assignment(5, 4);
  for (std::int32_t j = 0; j < 5; ++j) assignment.set(j, 0);
  EXPECT_TRUE(constraints.is_feasible(assignment, topo));
}

// ---------------------------------------------------------- generation ----

class ConstraintGenSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::int64_t>> {};

TEST_P(ConstraintGenSweep, HitsTargetCountExactly) {
  const auto [seed, target] = GetParam();
  RandomNetlistSpec spec;
  spec.num_components = 90;
  spec.total_wires = 300;
  spec.seed = seed;
  const auto generated = generate_netlist(spec);
  const auto topo = PartitionTopology::grid(4, 4, CostKind::kManhattan);
  TimingSpec timing_spec;
  timing_spec.target_count = target;
  timing_spec.seed = seed;
  const auto constraints = generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topo, timing_spec);
  EXPECT_EQ(constraints.count(), target);
}

TEST_P(ConstraintGenSweep, ReferencePlacementIsFeasible) {
  const auto [seed, target] = GetParam();
  RandomNetlistSpec spec;
  spec.num_components = 90;
  spec.total_wires = 300;
  spec.seed = seed;
  const auto generated = generate_netlist(spec);
  const auto topo = PartitionTopology::grid(4, 4, CostKind::kManhattan);
  TimingSpec timing_spec;
  timing_spec.target_count = target;
  timing_spec.seed = seed;
  const auto constraints = generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topo, timing_spec);
  const Assignment reference(
      std::vector<PartitionId>(generated.hidden_slot.begin(),
                               generated.hidden_slot.end()),
      16);
  EXPECT_TRUE(constraints.is_feasible(reference, topo));
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndTargets, ConstraintGenSweep,
    ::testing::Combine(::testing::Values(1u, 5u, 9u),
                       ::testing::Values(std::int64_t{50}, std::int64_t{200},
                                         std::int64_t{500})));

TEST(ConstraintGen, BoundsAreAtLeastOne) {
  RandomNetlistSpec spec;
  spec.num_components = 60;
  spec.total_wires = 200;
  spec.seed = 2;
  const auto generated = generate_netlist(spec);
  const auto topo = PartitionTopology::grid(4, 4, CostKind::kManhattan);
  TimingSpec timing_spec;
  timing_spec.target_count = 150;
  timing_spec.seed = 2;
  const auto constraints = generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topo, timing_spec);
  constraints.matrix().for_each([](std::int32_t, std::int32_t, double bound) {
    EXPECT_GE(bound, 1.0);
  });
}

TEST(ConstraintGen, TargetBeyondConnectedPairsUsesTwoHopPairs) {
  RandomNetlistSpec spec;
  spec.num_components = 30;
  spec.total_wires = 40;  // few connected pairs
  spec.seed = 4;
  const auto generated = generate_netlist(spec);
  const auto topo = PartitionTopology::grid(4, 4, CostKind::kManhattan);
  TimingSpec timing_spec;
  timing_spec.target_count = 100;  // > connected pairs
  timing_spec.seed = 4;
  const auto constraints = generate_timing_constraints(
      generated.netlist, generated.hidden_slot, topo, timing_spec);
  EXPECT_EQ(constraints.count(), 100);
}

TEST(ConstraintGen, DeterministicInSeed) {
  RandomNetlistSpec spec;
  spec.num_components = 50;
  spec.total_wires = 150;
  spec.seed = 8;
  const auto generated = generate_netlist(spec);
  const auto topo = PartitionTopology::grid(4, 4, CostKind::kManhattan);
  TimingSpec timing_spec;
  timing_spec.target_count = 80;
  timing_spec.seed = 8;
  const auto a = generate_timing_constraints(generated.netlist,
                                             generated.hidden_slot, topo,
                                             timing_spec);
  const auto b = generate_timing_constraints(generated.netlist,
                                             generated.hidden_slot, topo,
                                             timing_spec);
  EXPECT_EQ(a.matrix(), b.matrix());
}

}  // namespace
}  // namespace qbp
