#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>

#include "util/cli.hpp"
#include "util/flat_map.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace qbp {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int k = 0; k < 100; ++k) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int k = 0; k < 100; ++k) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int k = 0; k < 10000; ++k) {
    EXPECT_LT(rng.next_below(13), 13u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int k = 0; k < 1000; ++k) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextBelowApproximatelyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int k = 0; k < kDraws; ++k) ++counts[rng.next_below(kBuckets)];
  for (int bucket = 0; bucket < kBuckets; ++bucket) {
    EXPECT_NEAR(counts[bucket], kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int k = 0; k < 5000; ++k) {
    const auto value = rng.next_int(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    saw_lo |= value == -2;
    saw_hi |= value == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int k = 0; k < 10000; ++k) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kDraws = 20000;
  for (int k = 0; k < kDraws; ++k) {
    const double value = rng.next_gaussian();
    sum += value;
    sum_sq += value * value;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.05);
}

TEST(Rng, LogNormalIsPositive) {
  Rng rng(13);
  for (int k = 0; k < 1000; ++k) {
    EXPECT_GT(rng.next_log_normal(0.5, 1.0), 0.0);
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7};
  auto copy = values;
  rng.shuffle(std::span<int>(copy));
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, values);
}

TEST(Rng, PickWeightedRespectsZeros) {
  Rng rng(19);
  const std::vector<double> weights{0.0, 1.0, 0.0};
  for (int k = 0; k < 200; ++k) {
    EXPECT_EQ(rng.pick_weighted(weights), 1u);
  }
}

TEST(Rng, PickWeightedAllZeroReturnsSize) {
  Rng rng(19);
  const std::vector<double> weights{0.0, 0.0};
  EXPECT_EQ(rng.pick_weighted(weights), weights.size());
}

TEST(Rng, PickWeightedFollowsWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 3.0};
  int heavy = 0;
  constexpr int kDraws = 20000;
  for (int k = 0; k < kDraws; ++k) {
    if (rng.pick_weighted(weights) == 1) ++heavy;
  }
  EXPECT_NEAR(heavy, kDraws * 0.75, kDraws * 0.03);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(29);
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(2);
  int equal = 0;
  for (int k = 0; k < 100; ++k) {
    if (child() == child2()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, RandomPermutationIsPermutation) {
  Rng rng(31);
  const auto perm = random_permutation(20, rng);
  std::set<std::int32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 20u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 19);
}

// ------------------------------------------------------------ strings ----

TEST(Strings, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("a b"), "a b");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto fields = split("a,,b,", ',');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitWhitespaceDropsEmptyFields) {
  const auto fields = split_whitespace("  one \t two\nthree  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "one");
  EXPECT_EQ(fields[1], "two");
  EXPECT_EQ(fields[2], "three");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
}

TEST(Strings, ParseIntAcceptsWholeTokenOnly) {
  long long value = 0;
  EXPECT_TRUE(parse_int("42", value));
  EXPECT_EQ(value, 42);
  EXPECT_TRUE(parse_int(" -7 ", value));
  EXPECT_EQ(value, -7);
  EXPECT_FALSE(parse_int("12x", value));
  EXPECT_FALSE(parse_int("", value));
  EXPECT_FALSE(parse_int("4.2", value));
}

TEST(Strings, ParseDouble) {
  double value = 0.0;
  EXPECT_TRUE(parse_double("3.25", value));
  EXPECT_DOUBLE_EQ(value, 3.25);
  EXPECT_TRUE(parse_double("-1e3", value));
  EXPECT_DOUBLE_EQ(value, -1000.0);
  EXPECT_FALSE(parse_double("abc", value));
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(Strings, FormatGrouped) {
  EXPECT_EQ(format_grouped(0), "0");
  EXPECT_EQ(format_grouped(999), "999");
  EXPECT_EQ(format_grouped(1000), "1,000");
  EXPECT_EQ(format_grouped(20756), "20,756");
  EXPECT_EQ(format_grouped(-1234567), "-1,234,567");
}

// ---------------------------------------------------------------- cli ----

TEST(Cli, ParsesFlagsAndValues) {
  bool verbose = false;
  std::int64_t count = 10;
  double ratio = 0.5;
  std::string name = "default";
  CliParser cli("prog", "test");
  cli.add_flag("verbose", verbose, "v");
  cli.add_int("count", count, "c");
  cli.add_double("ratio", ratio, "r");
  cli.add_string("name", name, "n");

  const char* argv[] = {"prog", "--verbose", "--count", "42",
                        "--ratio=0.25", "--name", "x", "positional"};
  ASSERT_TRUE(cli.parse(8, argv));
  EXPECT_TRUE(verbose);
  EXPECT_EQ(count, 42);
  EXPECT_DOUBLE_EQ(ratio, 0.25);
  EXPECT_EQ(name, "x");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, RejectsUnknownOption) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--nope"};
  EXPECT_FALSE(cli.parse(2, argv));
  EXPECT_NE(cli.error().find("nope"), std::string::npos);
}

TEST(Cli, RejectsMalformedInt) {
  std::int64_t count = 0;
  CliParser cli("prog", "test");
  cli.add_int("count", count, "c");
  const char* argv[] = {"prog", "--count", "abc"};
  EXPECT_FALSE(cli.parse(3, argv));
}

TEST(Cli, MissingValueIsAnError) {
  std::int64_t count = 0;
  CliParser cli("prog", "test");
  cli.add_int("count", count, "c");
  const char* argv[] = {"prog", "--count"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpShortCircuits) {
  CliParser cli("prog", "test");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_TRUE(cli.help_requested());
  EXPECT_NE(cli.usage().find("prog"), std::string::npos);
}

TEST(Cli, FlagWithExplicitValue) {
  bool flag = true;
  CliParser cli("prog", "test");
  cli.add_flag("flag", flag, "f");
  const char* argv[] = {"prog", "--flag=false"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_FALSE(flag);
}

// ------------------------------------------------------------ FlatMap ----

TEST(FlatMap, InsertsSortedAndFinds) {
  FlatMap<int, double> map;
  map[5] = 1.0;
  map[1] = 2.0;
  map[3] = 3.0;
  EXPECT_EQ(map.size(), 3u);
  ASSERT_NE(map.find(3), nullptr);
  EXPECT_DOUBLE_EQ(*map.find(3), 3.0);
  EXPECT_EQ(map.find(2), nullptr);
  // Iteration order is key-sorted.
  std::vector<int> keys;
  for (const auto& [key, value] : map) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5}));
}

TEST(FlatMap, ValueOrAndContains) {
  FlatMap<int, int> map;
  map[2] = 20;
  EXPECT_EQ(map.value_or(2, -1), 20);
  EXPECT_EQ(map.value_or(9, -1), -1);
  EXPECT_TRUE(map.contains(2));
  EXPECT_FALSE(map.contains(9));
}

TEST(FlatMap, EraseRemovesOnlyTarget) {
  FlatMap<int, int> map;
  map[1] = 1;
  map[2] = 2;
  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.contains(2));
}

TEST(FlatMap, OperatorBracketUpdatesInPlace) {
  FlatMap<int, int> map;
  map[7] = 1;
  map[7] += 5;
  EXPECT_EQ(map.value_or(7, 0), 6);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, EmptyMapBehaves) {
  FlatMap<int, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.begin(), map.end());
  EXPECT_EQ(map.find(0), nullptr);
  EXPECT_FALSE(map.erase(0));
  EXPECT_EQ(map.value_or(0, 42), 42);
}

TEST(FlatMap, OperatorBracketDefaultConstructsAbsentKey) {
  FlatMap<int, double> map;
  EXPECT_DOUBLE_EQ(map[4], 0.0);  // inserted as Value{}
  EXPECT_EQ(map.size(), 1u);
  EXPECT_TRUE(map.contains(4));
}

TEST(FlatMap, EraseKeepsSortedIterationOrder) {
  FlatMap<int, int> map;
  for (const int key : {9, 2, 7, 4, 11, 0}) map[key] = key * 10;
  EXPECT_TRUE(map.erase(7));   // middle
  EXPECT_TRUE(map.erase(0));   // first
  EXPECT_TRUE(map.erase(11));  // last
  std::vector<int> keys;
  std::vector<int> values;
  for (const auto& [key, value] : map) {
    keys.push_back(key);
    values.push_back(value);
  }
  EXPECT_EQ(keys, (std::vector<int>{2, 4, 9}));
  EXPECT_EQ(values, (std::vector<int>{20, 40, 90}));
}

TEST(FlatMap, ReinsertAfterEraseStaysSorted) {
  FlatMap<int, int> map;
  map[1] = 10;
  map[3] = 30;
  map[5] = 50;
  EXPECT_TRUE(map.erase(3));
  map[3] = 31;
  std::vector<int> keys;
  for (const auto& [key, value] : map) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<int>{1, 3, 5}));
  EXPECT_EQ(map.value_or(3, -1), 31);
}

TEST(FlatMap, MutableFindAndIterationWriteThrough) {
  FlatMap<int, int> map;
  map[2] = 1;
  map[8] = 2;
  int* value = map.find(8);
  ASSERT_NE(value, nullptr);
  *value = 99;
  EXPECT_EQ(map.value_or(8, 0), 99);
  for (auto& [key, entry_value] : map) entry_value += 1;
  EXPECT_EQ(map.value_or(2, 0), 2);
  EXPECT_EQ(map.value_or(8, 0), 100);
}

TEST(FlatMap, NegativeKeysSortBeforePositive) {
  FlatMap<int, int> map;
  map[3] = 1;
  map[-5] = 2;
  map[0] = 3;
  std::vector<int> keys;
  for (const auto& [key, value] : map) keys.push_back(key);
  EXPECT_EQ(keys, (std::vector<int>{-5, 0, 3}));
}

TEST(FlatMap, EqualityComparesEntries) {
  FlatMap<int, int> a;
  FlatMap<int, int> b;
  EXPECT_TRUE(a == b);
  a[1] = 10;
  b[1] = 10;
  EXPECT_TRUE(a == b);
  b[1] = 11;
  EXPECT_FALSE(a == b);
  b[1] = 10;
  b[2] = 20;
  EXPECT_FALSE(a == b);  // same prefix, extra entry
}

TEST(FlatMap, ClearEmptiesAndAllowsReuse) {
  FlatMap<int, int> map;
  map.reserve(8);
  map[1] = 1;
  map[2] = 2;
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(1));
  map[4] = 40;
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.value_or(4, 0), 40);
}

// -------------------------------------------------------------- table ----

TEST(TextTable, RendersHeadersAndRows) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const std::string output = table.render();
  EXPECT_NE(output.find("name"), std::string::npos);
  EXPECT_NE(output.find("alpha"), std::string::npos);
  EXPECT_NE(output.find("22"), std::string::npos);
  // Every line has the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < output.size()) {
    const auto end = output.find('\n', start);
    const auto line = output.substr(start, end - start);
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
    start = end + 1;
  }
}

TEST(TextTable, ShortRowsArePadded) {
  TextTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_NO_THROW({ const auto rendered = table.render(); (void)rendered; });
}

TEST(TextTable, AlignmentLeftAndRight) {
  TextTable table({"left", "right"});
  table.set_alignment({TextTable::Align::kLeft, TextTable::Align::kRight});
  table.add_row({"x", "1"});
  const std::string output = table.render();
  EXPECT_NE(output.find("| x    |"), std::string::npos);
  EXPECT_NE(output.find("|     1 |"), std::string::npos);
}

// -------------------------------------------------------------- timer ----

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(timer.millis(), 15.0);
  EXPECT_LT(timer.seconds(), 5.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  timer.reset();
  EXPECT_LT(timer.millis(), 15.0);
}

// --------------------------------------------------------------- json ----

TEST(Json, ParsesEveryValueKind) {
  json::Value value;
  const auto parsed = json::parse(
      R"({"b":true,"n":null,"i":42,"d":-2.5,"s":"hi\nthere","a":[1,2,3],)"
      R"("o":{"nested":"yes"}})",
      value);
  ASSERT_TRUE(parsed.ok) << parsed.message;
  EXPECT_TRUE(value.is_object());
  EXPECT_EQ(value.get_bool("b", false), true);
  EXPECT_TRUE(value.find("n")->is_null());
  EXPECT_DOUBLE_EQ(value.get_number("i", 0), 42.0);
  EXPECT_DOUBLE_EQ(value.get_number("d", 0), -2.5);
  EXPECT_EQ(value.get_string("s", ""), "hi\nthere");
  ASSERT_TRUE(value.find("a")->is_array());
  EXPECT_EQ(value.find("a")->size(), 3u);
  EXPECT_DOUBLE_EQ(value.find("a")->at(1).as_number(), 2.0);
  EXPECT_EQ(value.find("o")->get_string("nested", ""), "yes");
}

TEST(Json, RoundTripsThroughDump) {
  json::Value original = json::Value::object();
  original.set("name", "qbpartd");
  original.set("count", 17);
  original.set("ratio", 0.375);
  json::Value list = json::Value::array();
  list.push_back(1);
  list.push_back("two");
  list.push_back(json::Value{});  // null
  original.set("list", std::move(list));

  json::Value reparsed;
  ASSERT_TRUE(json::parse(original.dump(), reparsed).ok);
  EXPECT_EQ(original, reparsed);
}

TEST(Json, EscapesAndUnicode) {
  json::Value value;
  ASSERT_TRUE(json::parse(R"(["\u0041\u00e9\u4e2d", "\"\\\/\b\f\n\r\t"])",
                          value)
                  .ok);
  EXPECT_EQ(value.at(0).as_string(), "A\xC3\xA9\xE4\xB8\xAD");
  EXPECT_EQ(value.at(1).as_string(), "\"\\/\b\f\n\r\t");
  // Serializing control characters escapes them back.
  json::Value reparsed;
  ASSERT_TRUE(json::parse(value.dump(), reparsed).ok);
  EXPECT_EQ(value, reparsed);
}

TEST(Json, SurrogatePairsDecodeToUtf8) {
  json::Value value;
  ASSERT_TRUE(json::parse(R"("\ud83d\ude00")", value).ok);  // emoji U+1F600
  EXPECT_EQ(value.as_string(), "\xF0\x9F\x98\x80");
  EXPECT_FALSE(json::parse(R"("\ud83d")", value).ok);  // lone high surrogate
}

TEST(Json, MalformedInputsFailWithMessages) {
  json::Value value;
  const char* bad[] = {
      "",           "{",           "[1,2",        "{\"a\":}",
      "[1,]",       "01",          "1.2.3",       "\"unterminated",
      "tru",        "nul",         "{\"a\" 1}",   "[1] trailing",
      "{\"a\":1,}", "\"\\q\"",     "+1",          "nan",
  };
  for (const char* text : bad) {
    SCOPED_TRACE(text);
    const auto parsed = json::parse(text, value);
    EXPECT_FALSE(parsed.ok);
    EXPECT_FALSE(parsed.message.empty());
  }
}

TEST(Json, DeeplyNestedInputRejectedNotOverflowed) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  json::Value value;
  EXPECT_FALSE(json::parse(deep, value).ok);
}

TEST(Json, IntegersSerializeWithoutExponent) {
  json::Value value = json::Value::array();
  value.push_back(static_cast<std::int64_t>(1993));
  value.push_back(1e15);
  value.push_back(0.5);
  EXPECT_EQ(value.dump(), "[1993,1000000000000000,0.5]");
}

}  // namespace
}  // namespace qbp
