// Shadow validator (core/validate.hpp): corrupted solver outcomes must be
// detected by the from-scratch recomputation, and enforce() must honor each
// contract fail mode -- abort (death test), throw (ContractViolation), and
// log-and-count (violation_count).  The final tests drive the validator
// through engine::Portfolio the way qbpartd does, via the per-job
// PortfolioOptions::validate override.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/qhat.hpp"
#include "core/validate.hpp"
#include "engine/engine.hpp"
#include "test_support.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace qbp {
namespace {

/// Restores the process fail mode on scope exit; every test that switches
/// modes uses one so a failing assertion cannot leak kThrow/kLogAndCount
/// into later tests.
class FailModeGuard {
 public:
  explicit FailModeGuard(check::FailMode mode) : saved_(check::fail_mode()) {
    check::set_fail_mode(mode);
  }
  ~FailModeGuard() { check::set_fail_mode(saved_); }
  FailModeGuard(const FailModeGuard&) = delete;
  FailModeGuard& operator=(const FailModeGuard&) = delete;

 private:
  check::FailMode saved_;
};

/// An honestly-reported outcome for `assignment`: numbers recomputed the
/// same way the validator recomputes them.
ReportedOutcome honest_outcome(const PartitionProblem& problem,
                               const Assignment& assignment,
                               double penalty = kPaperPenalty) {
  const QhatMatrix qhat(problem, penalty);
  ReportedOutcome outcome;
  outcome.best = &assignment;
  outcome.best_penalized = qhat.penalized_value(assignment);
  if (problem.is_feasible(assignment)) {
    outcome.best_feasible = &assignment;
    outcome.best_feasible_objective = problem.objective(assignment);
  }
  return outcome;
}

TEST(Validate, HonestOutcomeAndDeltasPassClean) {
  const PartitionProblem problem = test::make_tiny_problem(
      {.num_components = 10, .num_partitions = 3, .seed = 7});
  const Assignment assignment =
      test::round_robin(problem.num_components(), problem.num_partitions());

  const auto outcome_report =
      validate_outcome(problem, honest_outcome(problem, assignment));
  EXPECT_TRUE(outcome_report.ok()) << outcome_report.to_string();

  const auto delta_report = validate_deltas(problem, assignment);
  EXPECT_TRUE(delta_report.ok()) << delta_report.to_string();
}

TEST(Validate, CapacityOverflowInClaimedFeasibleIsDetected) {
  // Capacity 1.5 per partition: any partition holding two unit-size
  // components overflows.  Claim the all-in-one assignment feasible.
  const PartitionProblem problem = test::make_paper_example(/*capacity=*/1.5);
  Assignment crowded(problem.num_components(), problem.num_partitions());
  for (std::int32_t j = 0; j < problem.num_components(); ++j) {
    crowded.set(j, 0);
  }
  const QhatMatrix qhat(problem, kPaperPenalty);
  ReportedOutcome reported;
  reported.best = &crowded;
  reported.best_penalized = qhat.penalized_value(crowded);
  reported.best_feasible = &crowded;  // the lie under test
  reported.best_feasible_objective = problem.objective(crowded);

  const auto report = validate_outcome(problem, reported);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("capacity"), std::string::npos)
      << report.to_string();
}

TEST(Validate, UnassignedComponentIsDetected) {
  // A solver that "double-assigns" one component has necessarily left
  // another slot untouched; the dense representation surfaces that as an
  // unassigned (C3-violating) component.
  const PartitionProblem problem = test::make_paper_example();
  Assignment incomplete(problem.num_components(), problem.num_partitions());
  incomplete.set(0, 0);
  incomplete.set(1, 1);  // component 2 never assigned

  ReportedOutcome reported;
  reported.best = &incomplete;
  reported.best_penalized = 0.0;

  const auto report = validate_outcome(problem, reported);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("unassigned"), std::string::npos)
      << report.to_string();
}

TEST(Validate, StaleReportedNumbersAreDetected) {
  // A stale incremental cache shows up as reported values that drifted from
  // what the assignment actually evaluates to.
  const PartitionProblem problem = test::make_tiny_problem(
      {.num_components = 8, .num_partitions = 2, .seed = 3});
  const Assignment assignment =
      test::round_robin(problem.num_components(), problem.num_partitions());

  ReportedOutcome reported = honest_outcome(problem, assignment);
  reported.best_penalized += 0.5;  // drifted bookkeeping

  const auto report = validate_outcome(problem, reported);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("penalized"), std::string::npos)
      << report.to_string();
}

TEST(Validate, WrongPenaltyMakesReportedNumbersIncoherent) {
  // Numbers computed under one penalty but audited under another must not
  // slip through (this is why Solver::penalized_with() exists).
  const PartitionProblem problem = test::make_paper_example();
  // a and b on diagonally opposite corners of the 2 x 2 grid: Manhattan
  // distance 2 breaks their adjacency bound, so the penalized value
  // actually depends on the penalty.
  Assignment assignment(problem.num_components(), problem.num_partitions());
  assignment.set(0, 0);
  assignment.set(1, 3);
  assignment.set(2, 0);
  ASSERT_FALSE(problem.satisfies_timing(assignment));

  ReportedOutcome reported =
      honest_outcome(problem, assignment, /*penalty=*/kPaperPenalty);
  ValidateOptions audit;
  audit.penalty = kPaperPenalty * 4.0;
  const auto report = validate_outcome(problem, reported, audit);
  EXPECT_FALSE(report.ok());
}

TEST(Validate, EnforceThrowModeRaisesContractViolation) {
  const FailModeGuard guard(check::FailMode::kThrow);
  ValidationReport bad;
  bad.issues.emplace_back("synthetic issue");
  const std::uint64_t before = check::violation_count();
  EXPECT_THROW(enforce(bad, "throw-mode test"), ContractViolation);
  EXPECT_EQ(check::violation_count(), before + 1);

  try {
    enforce(bad, "throw-mode test");
    FAIL() << "enforce() must throw in kThrow mode";
  } catch (const ContractViolation& violation) {
    const std::string what = violation.what();
    EXPECT_NE(what.find("throw-mode test"), std::string::npos) << what;
    EXPECT_NE(what.find("synthetic issue"), std::string::npos) << what;
  }
}

TEST(Validate, EnforceLogAndCountModeCountsWithoutThrowing) {
  const FailModeGuard guard(check::FailMode::kLogAndCount);
  ValidationReport bad;
  bad.issues.emplace_back("synthetic issue");
  const std::uint64_t before = check::violation_count();
  EXPECT_NO_THROW(enforce(bad, "count-mode test"));
  EXPECT_EQ(check::violation_count(), before + 1);

  ValidationReport good;
  EXPECT_NO_THROW(enforce(good, "count-mode test"));
  EXPECT_EQ(check::violation_count(), before + 1);  // ok reports are free
}

TEST(ValidateDeathTest, EnforceAbortModeAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  ValidationReport bad;
  bad.issues.emplace_back("synthetic abort issue");
  // kAbort is the process default; assert rather than assume.
  ASSERT_EQ(check::fail_mode(), check::FailMode::kAbort);
  EXPECT_DEATH(enforce(bad, "abort-mode test"), "synthetic abort issue");
}

TEST(Validate, ProcessDefaultToggleRoundTrips) {
  const bool original = validation_enabled();
  set_validation_enabled(!original);
  EXPECT_EQ(validation_enabled(), !original);
  set_validation_enabled(original);
  EXPECT_EQ(validation_enabled(), original);
}

TEST(Validate, PortfolioAuditsEveryStartWhenRequested) {
  const PartitionProblem problem = test::make_tiny_problem(
      {.num_components = 12, .num_partitions = 3, .seed = 21});
  BurkardOptions solver_options;
  solver_options.iterations = 12;
  const engine::BurkardSolver solver(solver_options);

  engine::PortfolioOptions options;
  options.threads = 2;
  options.validate = true;  // the per-job override qbpartd forwards
  const auto result = engine::Portfolio(options).run(problem, solver, 4);

  EXPECT_EQ(result.starts_run, 4);
  EXPECT_EQ(result.starts_errored, 0);
  EXPECT_EQ(result.starts_validated, 4);
  for (const auto& start : result.starts) {
    EXPECT_TRUE(start.validated);
    EXPECT_TRUE(start.error.empty()) << start.error;
  }
}

TEST(Validate, PortfolioSkipsAuditWhenDisabledPerJob) {
  const PartitionProblem problem = test::make_tiny_problem(
      {.num_components = 12, .num_partitions = 3, .seed = 21});
  BurkardOptions solver_options;
  solver_options.iterations = 12;
  const engine::BurkardSolver solver(solver_options);

  engine::PortfolioOptions options;
  options.validate = false;  // explicit off beats any process default
  const auto result = engine::Portfolio(options).run(problem, solver, 3);

  EXPECT_EQ(result.starts_run, 3);
  EXPECT_EQ(result.starts_validated, 0);
}

}  // namespace
}  // namespace qbp
