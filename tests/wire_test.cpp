// Unit tests for the binary wire protocol: util/wire framing + payload
// primitives, the service message codec (service/wire), and the bulk
// "straight into normalized CSR form" construction paths the binary decode
// rides (Csr::from_symmetric_pairs, Netlist::from_sorted_parts,
// TimingConstraints::from_sorted_pairs).
//
// The load-bearing property throughout is VALUE IDENTITY: a problem
// decoded from a wire frame -- by the canonical fast path or the
// non-canonical replay fallback -- must equal the text-parsed instance
// bit for bit (same fingerprint, same CSR structures), because the cache
// key and the solver results both hang off those bits.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/fingerprint.hpp"
#include "core/problem.hpp"
#include "core/problem_io.hpp"
#include "service/protocol.hpp"
#include "service/wire.hpp"
#include "sparse/csr.hpp"
#include "test_support.hpp"
#include "util/wire.hpp"

namespace qbp {
namespace {

// ------------------------------------------------------- primitives ----

TEST(WirePrimitives, ScalarsRoundTripExactly) {
  std::string buffer;
  wire::Writer writer(buffer);
  writer.u8(0xAB);
  writer.u16(0xBEEF);
  writer.u32(0xDEADBEEF);
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16384},
        std::numeric_limits<std::uint64_t>::max()}) {
    writer.varint(v);
  }
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    writer.svarint(v);
  }
  const double kDoubles[] = {0.0, -0.0, 1.5, -1e300,
                             std::numeric_limits<double>::infinity(),
                             std::numeric_limits<double>::denorm_min(),
                             std::numeric_limits<double>::quiet_NaN()};
  for (const double v : kDoubles) writer.f64(v);
  writer.string("hello \xC3\xA9 world");
  writer.string("");

  wire::Reader reader(buffer);
  std::uint8_t u8 = 0;
  std::uint16_t u16 = 0;
  std::uint32_t u32 = 0;
  ASSERT_TRUE(reader.u8(u8));
  ASSERT_TRUE(reader.u16(u16));
  ASSERT_TRUE(reader.u32(u32));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  for (const std::uint64_t expected :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{127},
        std::uint64_t{128}, std::uint64_t{16384},
        std::numeric_limits<std::uint64_t>::max()}) {
    std::uint64_t v = 99;
    ASSERT_TRUE(reader.varint(v));
    EXPECT_EQ(v, expected);
  }
  for (const std::int64_t expected :
       {std::int64_t{0}, std::int64_t{-1}, std::int64_t{1},
        std::numeric_limits<std::int64_t>::min(),
        std::numeric_limits<std::int64_t>::max()}) {
    std::int64_t v = 99;
    ASSERT_TRUE(reader.svarint(v));
    EXPECT_EQ(v, expected);
  }
  for (const double expected : kDoubles) {
    double v = 99.0;
    ASSERT_TRUE(reader.f64(v));
    // Bit-exact, including -0.0 vs 0.0 and the NaN payload.
    std::uint64_t got_bits = 0;
    std::uint64_t want_bits = 0;
    std::memcpy(&got_bits, &v, sizeof v);
    std::memcpy(&want_bits, &expected, sizeof expected);
    EXPECT_EQ(got_bits, want_bits);
  }
  std::string_view text;
  ASSERT_TRUE(reader.string(text));
  EXPECT_EQ(text, "hello \xC3\xA9 world");
  ASSERT_TRUE(reader.string(text));
  EXPECT_EQ(text, "");
  EXPECT_TRUE(reader.done());
}

TEST(WirePrimitives, ArraysRoundTripAndHostileCountsAreRejected) {
  std::string buffer;
  wire::Writer writer(buffer);
  const std::vector<double> doubles = {1.0, -0.0, 3.5e-12};
  const std::vector<std::int32_t> ints = {-1, 0, 1 << 20};
  writer.f64_array(doubles);
  writer.i32_array(ints);

  wire::Reader reader(buffer);
  std::vector<double> doubles_out;
  std::vector<std::int32_t> ints_out;
  ASSERT_TRUE(reader.f64_array(doubles_out));
  ASSERT_TRUE(reader.i32_array(ints_out));
  EXPECT_EQ(doubles_out, doubles);
  EXPECT_EQ(ints_out, ints);
  EXPECT_TRUE(reader.done());

  // A count promising far more elements than the payload holds must fail
  // before any allocation-sized-by-count happens.
  std::string hostile;
  wire::Writer hostile_writer(hostile);
  hostile_writer.varint(std::uint64_t{1} << 40);
  hostile_writer.f64(1.0);
  wire::Reader hostile_reader(hostile);
  std::vector<double> sink;
  EXPECT_FALSE(hostile_reader.f64_array(sink));
}

TEST(WirePrimitives, TruncatedInputsFailCleanly) {
  std::string buffer;
  wire::Writer writer(buffer);
  writer.string("four");
  {
    wire::Reader reader(std::string_view(buffer).substr(0, buffer.size() - 2));
    std::string_view text;
    EXPECT_FALSE(reader.string(text));
  }
  {
    // A lone continuation byte is an unterminated varint.
    const std::string bytes("\x80", 1);
    wire::Reader reader(bytes);
    std::uint64_t v = 0;
    EXPECT_FALSE(reader.varint(v));
  }
  {
    const std::string bytes("\x01\x02\x03", 3);
    wire::Reader reader(bytes);
    double v = 0.0;
    EXPECT_FALSE(reader.f64(v));
  }
}

// ---------------------------------------------------------- framing ----

std::string make_frame(std::uint8_t type, std::string_view payload) {
  std::string out;
  wire::append_frame(out, type, payload);
  return out;
}

TEST(Framing, PeekFrameVerdicts) {
  wire::FrameView frame;
  std::string error;

  EXPECT_EQ(wire::peek_frame("", frame, error),
            wire::FrameStatus::kIncomplete);
  const std::string whole = make_frame(7, "payload");
  for (std::size_t cut = 1; cut < whole.size(); ++cut) {
    EXPECT_EQ(wire::peek_frame(std::string_view(whole).substr(0, cut), frame,
                               error),
              wire::FrameStatus::kIncomplete)
        << "cut at " << cut;
  }
  ASSERT_EQ(wire::peek_frame(whole, frame, error), wire::FrameStatus::kFrame);
  EXPECT_EQ(frame.type, 7);
  EXPECT_EQ(frame.payload, "payload");
  EXPECT_EQ(frame.frame_size, whole.size());

  // Trailing bytes beyond the first frame do not disturb the verdict.
  const std::string padded = whole + "garbage";
  ASSERT_EQ(wire::peek_frame(padded, frame, error), wire::FrameStatus::kFrame);
  EXPECT_EQ(frame.frame_size, whole.size());

  std::string bad_magic = whole;
  bad_magic[1] = 'X';
  EXPECT_EQ(wire::peek_frame(bad_magic, frame, error), wire::FrameStatus::kBad);
  EXPECT_FALSE(error.empty());

  std::string bad_version = whole;
  bad_version[4] = static_cast<char>(wire::kVersion + 1);
  EXPECT_EQ(wire::peek_frame(bad_version, frame, error),
            wire::FrameStatus::kBad);

  std::string bad_flags = whole;
  bad_flags[6] = 1;
  EXPECT_EQ(wire::peek_frame(bad_flags, frame, error), wire::FrameStatus::kBad);

  // A header advertising a payload beyond kMaxPayload is hostile, not
  // merely incomplete.
  std::string oversized = whole;
  const std::uint32_t huge = wire::kMaxPayload + 1;
  std::memcpy(oversized.data() + 8, &huge, sizeof huge);
  EXPECT_EQ(wire::peek_frame(oversized, frame, error),
            wire::FrameStatus::kBad);
}

TEST(Framing, FrameBufferStreamsAcrossArbitrarySplits) {
  const std::string first = make_frame(1, "alpha");
  const std::string second = make_frame(2, std::string(3000, 'b'));
  const std::string stream = first + second;

  // Feed the two-frame stream one byte at a time; exactly two frames must
  // come out, bit-identical, regardless of split points.
  wire::FrameBuffer buffer;
  std::vector<std::pair<std::uint8_t, std::string>> frames;
  for (const char byte : stream) {
    buffer.append(&byte, 1);
    for (;;) {
      wire::FrameView frame;
      std::string error;
      const auto status = buffer.next(frame, error);
      if (status != wire::FrameStatus::kFrame) {
        ASSERT_EQ(status, wire::FrameStatus::kIncomplete);
        break;
      }
      frames.emplace_back(frame.type, std::string(frame.payload));
      buffer.consume(frame.frame_size);
    }
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].first, 1);
  EXPECT_EQ(frames[0].second, "alpha");
  EXPECT_EQ(frames[1].first, 2);
  EXPECT_EQ(frames[1].second, std::string(3000, 'b'));
  EXPECT_EQ(buffer.pending(), 0u);
}

// ---------------------------------------------------- message codec ----

service::Request submit_request() {
  service::Request request;
  request.type = service::RequestType::kSubmit;
  request.id = "job-42";
  request.solver.method = "qbp";
  request.solver.starts = 3;
  request.solver.threads = 2;
  request.solver.inner_threads = 2;
  request.solver.iterations = 17;
  request.solver.seed = 12345;
  request.solver.validate = true;
  request.solver.presolve = false;
  request.priority = 5;
  request.deadline_ms = 1500.0;
  request.cache = false;
  request.warm_start = false;
  return request;
}

/// Split a full frame into (type, payload) or fail the test.
void split_frame(const std::string& frame, std::uint8_t& type,
                 std::string& payload) {
  wire::FrameView view;
  std::string error;
  ASSERT_EQ(wire::peek_frame(frame, view, error), wire::FrameStatus::kFrame)
      << error;
  ASSERT_EQ(view.frame_size, frame.size()) << "ragged frame";
  type = view.type;
  payload = std::string(view.payload);
}

TEST(MessageCodec, SubmitWithTextRoundTripsEveryField) {
  service::Request request = submit_request();
  request.problem_text = "problem p\ncomponents 1\nc0 1\n";

  std::string frame;
  service::encode_request_frame(request, frame);
  std::uint8_t type = 0;
  std::string payload;
  split_frame(frame, type, payload);
  ASSERT_EQ(static_cast<service::WireMsg>(type), service::WireMsg::kSubmit);

  service::Request out;
  std::string error;
  ASSERT_TRUE(service::decode_submit(payload, out, error)) << error;
  EXPECT_EQ(out.id, request.id);
  EXPECT_EQ(out.problem_text, request.problem_text);
  EXPECT_EQ(out.solver.method, request.solver.method);
  EXPECT_EQ(out.solver.starts, request.solver.starts);
  EXPECT_EQ(out.solver.threads, request.solver.threads);
  EXPECT_EQ(out.solver.inner_threads, request.solver.inner_threads);
  EXPECT_EQ(out.solver.iterations, request.solver.iterations);
  EXPECT_EQ(out.solver.seed, request.solver.seed);
  EXPECT_EQ(out.solver.validate, request.solver.validate);
  EXPECT_EQ(out.solver.presolve, request.solver.presolve);
  EXPECT_EQ(out.priority, request.priority);
  EXPECT_EQ(out.deadline_ms, request.deadline_ms);
  EXPECT_EQ(out.cache, request.cache);
  EXPECT_EQ(out.warm_start, request.warm_start);
  EXPECT_EQ(out.problem, nullptr);
}

TEST(MessageCodec, ResultRoundTripsEveryField) {
  service::JobResult result;
  result.id = "job-42";
  result.status = "ok";
  result.solver = "qbp";
  result.feasible = true;
  result.objective = 123.4375;
  result.best_penalized = 123.4375;
  result.assignment = {0, 2, 1, 2};
  result.starts_run = 3;
  result.cache_hit = true;
  result.warm_start = true;
  result.eco_repairs = 2;
  result.eco_edits = 5;

  std::string frame;
  service::encode_result_frame(result, frame);
  std::uint8_t type = 0;
  std::string payload;
  split_frame(frame, type, payload);
  ASSERT_EQ(static_cast<service::WireMsg>(type), service::WireMsg::kResult);

  service::JobResult out;
  std::string error;
  ASSERT_TRUE(service::decode_result(payload, out, error)) << error;
  EXPECT_EQ(out.id, result.id);
  EXPECT_EQ(out.status, result.status);
  EXPECT_EQ(out.solver, result.solver);
  EXPECT_EQ(out.feasible, result.feasible);
  EXPECT_EQ(out.objective, result.objective);
  EXPECT_EQ(out.best_penalized, result.best_penalized);
  EXPECT_EQ(out.assignment, result.assignment);
  EXPECT_EQ(out.starts_run, result.starts_run);
  EXPECT_EQ(out.cache_hit, result.cache_hit);
  EXPECT_EQ(out.warm_start, result.warm_start);
  EXPECT_EQ(out.eco_repairs, result.eco_repairs);
  EXPECT_EQ(out.eco_edits, result.eco_edits);
}

TEST(MessageCodec, MalformedPayloadsFailWithMessagesNeverAbort) {
  service::Request request;
  service::JobResult result;
  std::string id;
  std::string text;
  std::string error;
  // Empty and garbage payloads across every decoder.
  for (const std::string payload :
       {std::string(), std::string("\xFF\xFF\xFF\xFF", 4),
        std::string(64, '\x80')}) {
    EXPECT_FALSE(service::decode_submit(payload, request, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(service::decode_cancel(payload, request, error));
    EXPECT_FALSE(service::decode_result(payload, result, error));
  }
  // A note payload of two empty strings decodes; garbage does not.
  EXPECT_FALSE(service::decode_note(std::string("\xFF", 1), id, text, error));
}

// --------------------------------------------- problem value identity ----

PartitionProblem medium_problem(std::uint64_t seed = 17) {
  return test::make_tiny_problem({.num_components = 24,
                                  .num_partitions = 4,
                                  .wire_probability = 0.4,
                                  .constraint_probability = 0.3,
                                  .with_linear_term = true,
                                  .seed = seed});
}

/// Encode via the canonical encoder, decode, and return the instance.
std::shared_ptr<const PartitionProblem> wire_round_trip(
    const PartitionProblem& problem) {
  std::string payload;
  wire::Writer writer(payload);
  service::encode_problem(problem, writer);
  wire::Reader reader(payload);
  std::shared_ptr<const PartitionProblem> out;
  std::string error;
  EXPECT_TRUE(service::decode_problem(reader, out, error)) << error;
  EXPECT_TRUE(reader.done());
  return out;
}

void expect_value_identical(const PartitionProblem& a,
                            const PartitionProblem& b) {
  EXPECT_TRUE(problem_fingerprint(a) == problem_fingerprint(b));
  EXPECT_EQ(a.netlist().name(), b.netlist().name());
  EXPECT_EQ(a.netlist().components().size(), b.netlist().components().size());
  EXPECT_EQ(a.netlist().sizes(), b.netlist().sizes());
  EXPECT_EQ(a.netlist().bundles(), b.netlist().bundles());
  EXPECT_TRUE(a.netlist().connection_matrix() ==
              b.netlist().connection_matrix());
  EXPECT_TRUE(a.timing().matrix() == b.timing().matrix());
  EXPECT_EQ(a.topology().capacities(), b.topology().capacities());
  EXPECT_EQ(a.alpha(), b.alpha());
  EXPECT_EQ(a.beta(), b.beta());
}

TEST(ProblemCodec, WireDecodeMatchesTextParse) {
  const PartitionProblem original = medium_problem();

  std::ostringstream text;
  write_problem(text, original);
  PartitionProblem text_parsed;
  {
    std::istringstream in(text.str());
    ASSERT_TRUE(read_problem(in, text_parsed).ok);
  }

  const auto wire_parsed = wire_round_trip(text_parsed);
  ASSERT_NE(wire_parsed, nullptr);
  expect_value_identical(text_parsed, *wire_parsed);

  // Re-encoding the decoded instance is a byte-for-byte fixed point.
  std::string first;
  std::string second;
  {
    wire::Writer writer(first);
    service::encode_problem(text_parsed, writer);
  }
  {
    wire::Writer writer(second);
    service::encode_problem(*wire_parsed, writer);
  }
  EXPECT_EQ(first, second);
}

TEST(ProblemCodec, NonCanonicalOrderFallsBackToIdenticalValue) {
  const PartitionProblem original = medium_problem(23);
  const auto canonical = wire_round_trip(original);
  ASSERT_NE(canonical, nullptr);

  // Re-encode by hand with the bundle and constraint lists reversed and
  // the first bundle split into two duplicate entries: no longer
  // canonical, so decode_problem must take the replay path -- and still
  // produce the identical instance.
  const Netlist& netlist = original.netlist();
  std::vector<WireBundle> bundles(netlist.bundles().rbegin(),
                                  netlist.bundles().rend());
  ASSERT_GE(bundles.size(), 1u);
  if (bundles.front().multiplicity > 1) {
    WireBundle split = bundles.front();
    split.multiplicity = 1;
    bundles.front().multiplicity -= 1;
    bundles.push_back(split);
  }

  std::string payload;
  wire::Writer writer(payload);
  writer.string(netlist.name());
  writer.f64(original.alpha());
  writer.f64(original.beta());
  const std::int32_t m = original.topology().num_partitions();
  const std::int32_t n = netlist.num_components();
  writer.varint(static_cast<std::uint64_t>(m));
  writer.varint(static_cast<std::uint64_t>(n));
  for (const Component& component : netlist.components()) {
    writer.string(component.name);
  }
  writer.f64_array(netlist.sizes());
  std::vector<std::int32_t> scratch(bundles.size());
  writer.varint(bundles.size());
  for (std::size_t k = 0; k < bundles.size(); ++k) scratch[k] = bundles[k].a;
  writer.i32_array(scratch);
  for (std::size_t k = 0; k < bundles.size(); ++k) scratch[k] = bundles[k].b;
  writer.i32_array(scratch);
  for (std::size_t k = 0; k < bundles.size(); ++k) {
    scratch[k] = bundles[k].multiplicity;
  }
  writer.i32_array(scratch);
  writer.f64_array(original.topology().wire_cost().flat());
  writer.f64_array(original.topology().delay().flat());
  writer.f64_array(original.topology().capacities());
  // Constraints from the upper triangle, reversed.
  std::vector<std::int32_t> t_a;
  std::vector<std::int32_t> t_b;
  std::vector<double> t_bound;
  const Csr<double>& timing = original.timing().matrix();
  timing.for_each([&](std::int32_t j1, std::int32_t j2, double bound) {
    if (j1 < j2) {
      t_a.push_back(j1);
      t_b.push_back(j2);
      t_bound.push_back(bound);
    }
  });
  std::reverse(t_a.begin(), t_a.end());
  std::reverse(t_b.begin(), t_b.end());
  std::reverse(t_bound.begin(), t_bound.end());
  writer.varint(t_a.size());
  writer.i32_array(t_a);
  writer.i32_array(t_b);
  writer.f64_array(t_bound);
  const Matrix<double>& p = original.linear_cost_matrix();
  writer.u8(p.empty() ? 0 : 1);
  if (!p.empty()) writer.f64_array(p.flat());

  wire::Reader reader(payload);
  std::shared_ptr<const PartitionProblem> fallback;
  std::string error;
  ASSERT_TRUE(service::decode_problem(reader, fallback, error)) << error;
  expect_value_identical(*canonical, *fallback);
}

TEST(ProblemCodec, SubmitStructCarriesProblemZeroParse) {
  service::Request request = submit_request();
  request.problem =
      std::make_shared<PartitionProblem>(medium_problem(31));

  std::string frame;
  service::encode_request_frame(request, frame);
  std::uint8_t type = 0;
  std::string payload;
  split_frame(frame, type, payload);

  service::Request out;
  std::string error;
  ASSERT_TRUE(service::decode_submit(payload, out, error)) << error;
  ASSERT_NE(out.problem, nullptr);
  EXPECT_TRUE(out.problem_text.empty());
  expect_value_identical(*request.problem, *out.problem);
}

// ------------------------------------------------- bulk construction ----

TEST(BulkBuild, CsrFromSymmetricPairsMatchesFromTriplets) {
  const std::int32_t n = 9;
  const std::vector<std::int32_t> a = {0, 0, 1, 2, 2, 5};
  const std::vector<std::int32_t> b = {3, 7, 2, 4, 8, 6};
  const std::vector<double> values = {1.5, -2.0, 0.0, 4.25, 7.0, -0.5};

  std::vector<Triplet<double>> triplets;
  for (std::size_t k = 0; k < a.size(); ++k) {
    triplets.push_back({a[k], b[k], values[k]});
    triplets.push_back({b[k], a[k], values[k]});
  }
  const auto via_triplets = Csr<double>::from_triplets(n, n, triplets);
  const auto via_pairs = Csr<double>::from_symmetric_pairs(n, a, b, values);
  EXPECT_TRUE(via_pairs == via_triplets);

  // Empty pair list: a valid all-zero matrix.
  const auto empty = Csr<double>::from_symmetric_pairs(n, {}, {}, {});
  EXPECT_EQ(empty.rows(), n);
  EXPECT_EQ(empty.nonzeros(), 0u);
}

TEST(BulkBuild, NetlistFromSortedPartsMatchesIncremental) {
  Netlist incremental("bulk");
  incremental.add_component("a", 1.0);
  incremental.add_component("b", 2.5);
  incremental.add_component("c", 0.5);
  incremental.add_component("d", 4.0);
  incremental.add_wires(0, 1, 2);
  incremental.add_wires(1, 3, 1);
  incremental.add_wires(0, 2, 5);
  incremental.finalize();
  (void)incremental.connection_matrix();

  const Netlist bulk = Netlist::from_sorted_parts(
      "bulk",
      {{"a", 1.0}, {"b", 2.5}, {"c", 0.5}, {"d", 4.0}},
      {{0, 1, 2}, {0, 2, 5}, {1, 3, 1}});
  EXPECT_EQ(bulk.name(), incremental.name());
  EXPECT_EQ(bulk.sizes(), incremental.sizes());
  EXPECT_EQ(bulk.bundles(), incremental.bundles());
  EXPECT_TRUE(bulk.connection_matrix() == incremental.connection_matrix());
  EXPECT_EQ(bulk.total_wires(), incremental.total_wires());
  EXPECT_EQ(bulk.num_connected_pairs(), incremental.num_connected_pairs());
  EXPECT_TRUE(bulk.validate().empty());
}

TEST(BulkBuild, TimingFromSortedPairsMatchesAddPath) {
  TimingConstraints incremental(6);
  incremental.add(0, 2, 3.0);
  incremental.add(1, 4, 1.5);
  incremental.add(2, 5, 2.0);
  (void)incremental.matrix();

  const std::vector<std::int32_t> j1 = {0, 1, 2};
  const std::vector<std::int32_t> j2 = {2, 4, 5};
  const std::vector<double> bounds = {3.0, 1.5, 2.0};
  const TimingConstraints bulk =
      TimingConstraints::from_sorted_pairs(6, j1, j2, bounds);
  EXPECT_TRUE(bulk.matrix() == incremental.matrix());
  EXPECT_EQ(bulk.count(), incremental.count());
  EXPECT_EQ(bulk.max_delay(1, 4), 1.5);
  EXPECT_EQ(bulk.max_delay(3, 4), TimingConstraints::kUnconstrained);
}

}  // namespace
}  // namespace qbp
