// Workload-configuration coverage: the circuit factory under non-default
// metrics, localities and capacity slacks -- the knobs the benches hold
// fixed.
#include <gtest/gtest.h>

#include <tuple>

#include "bench_support/circuits.hpp"
#include "core/burkard.hpp"
#include "core/initial.hpp"
#include "partition/cost.hpp"

namespace qbp {
namespace {

CircuitPreset small_preset(std::uint64_t seed) {
  return {"wl" + std::to_string(seed), 120, 520, 260, seed};
}

using MetricParam = std::tuple<CostKind, std::uint64_t>;

class MetricSweep : public ::testing::TestWithParam<MetricParam> {};

TEST_P(MetricSweep, InstanceValidAndFeasible) {
  const auto [metric, seed] = GetParam();
  CircuitConfig config;
  config.metric = metric;
  const auto instance = make_circuit(small_preset(seed), config);
  EXPECT_EQ(instance.problem.validate(), "");
  EXPECT_TRUE(instance.problem.is_feasible(instance.hidden_placement));
}

TEST_P(MetricSweep, MetricShapesTheCostMatrix) {
  const auto [metric, seed] = GetParam();
  CircuitConfig config;
  config.metric = metric;
  const auto instance = make_circuit(small_preset(seed), config);
  const auto& b = instance.problem.topology().wire_cost();
  // Opposite grid corners of the 4 x 4 array: ids 0 and 15, distance 6.
  switch (metric) {
    case CostKind::kUnit: EXPECT_DOUBLE_EQ(b(0, 15), 1.0); break;
    case CostKind::kManhattan: EXPECT_DOUBLE_EQ(b(0, 15), 6.0); break;
    case CostKind::kQuadratic: EXPECT_DOUBLE_EQ(b(0, 15), 36.0); break;
  }
  // The delay matrix stays Manhattan regardless of the cost metric.
  EXPECT_DOUBLE_EQ(instance.problem.topology().delay(0, 15), 6.0);
}

TEST_P(MetricSweep, SolvableUnderEveryMetric) {
  const auto [metric, seed] = GetParam();
  CircuitConfig config;
  config.metric = metric;
  const auto instance = make_circuit(small_preset(seed), config);
  const auto initial = make_initial(instance.problem,
                                    InitialStrategy::kQbpZeroWireCost, seed);
  if (!initial.feasible) GTEST_SKIP();
  BurkardOptions options;
  options.iterations = 25;
  const auto result = solve_qbp(instance.problem, initial.assignment, options);
  EXPECT_TRUE(result.found_feasible);
  if (result.found_feasible) {
    EXPECT_LE(instance.problem.objective(result.best_feasible),
              instance.problem.objective(initial.assignment) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Metrics, MetricSweep,
    ::testing::Combine(::testing::Values(CostKind::kUnit, CostKind::kManhattan,
                                         CostKind::kQuadratic),
                       ::testing::Values(31u, 32u)));

TEST(WorkloadConfig, TighterSlackMeansTighterCapacities) {
  CircuitConfig loose;
  loose.capacity_slack = 0.5;
  CircuitConfig tight;
  tight.capacity_slack = 0.05;
  const auto preset = small_preset(33);
  const auto loose_instance = make_circuit(preset, loose);
  const auto tight_instance = make_circuit(preset, tight);
  EXPECT_GT(loose_instance.problem.topology().total_capacity(),
            tight_instance.problem.topology().total_capacity());
  // Both still feasible by construction.
  EXPECT_TRUE(tight_instance.problem.is_feasible(
      tight_instance.hidden_placement));
}

TEST(WorkloadConfig, LocalityLowersTheReferenceWirelength) {
  CircuitConfig local;
  local.locality = 0.9;
  CircuitConfig spread;
  spread.locality = 0.0;
  const auto preset = small_preset(34);
  const auto local_instance = make_circuit(preset, local);
  const auto spread_instance = make_circuit(preset, spread);
  EXPECT_LT(
      local_instance.problem.wirelength(local_instance.hidden_placement),
      spread_instance.problem.wirelength(spread_instance.hidden_placement));
}

}  // namespace
}  // namespace qbp
