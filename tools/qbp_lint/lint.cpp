#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace qbp::lint {

namespace {

// ------------------------------------------------------------- tokenizer

enum class TokenKind { kIdent, kNumber, kString, kPunct };

struct Token {
  TokenKind kind;
  std::string text;
  int line = 0;
};

/// A `// qbp-lint: allow(rule)` comment: the rules it names, the line it
/// sits on, and whether the comment was the only thing on that line (in
/// which case it covers the next line instead of its own).
struct Suppression {
  std::set<std::string> rules;
  bool own_line = false;
};

struct TokenizedFile {
  std::vector<Token> tokens;
  std::map<int, Suppression> suppressions;  // keyed by comment line
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Extract every allow(...) rule from one comment's text.
void parse_suppression(const std::string& comment, int line, bool own_line,
                       std::map<int, Suppression>& out) {
  const std::size_t tag = comment.find("qbp-lint:");
  if (tag == std::string::npos) return;
  std::size_t cursor = tag;
  while ((cursor = comment.find("allow(", cursor)) != std::string::npos) {
    cursor += 6;
    const std::size_t close = comment.find(')', cursor);
    if (close == std::string::npos) return;
    Suppression& entry = out[line];
    entry.rules.insert(comment.substr(cursor, close - cursor));
    entry.own_line = own_line;
    cursor = close;
  }
}

/// Comment- and string-stripping tokenizer.  Emits `::` and `->` as single
/// punctuation tokens, collapses string/char literals to one token, skips
/// preprocessor directives (so `#include <unordered_map>` never reads as a
/// declaration) and records qbp-lint suppression comments.
TokenizedFile tokenize(const std::string& text) {
  TokenizedFile out;
  int line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  // Tracks whether any token was emitted on the current line: a comment on
  // a line of its own suppresses the *next* line.
  bool line_has_code = false;

  const auto newline = [&] {
    ++line;
    line_has_code = false;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line (honoring continuations).
    if (c == '#' && !line_has_code) {
      while (i < n && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          newline();
          ++i;
        }
        ++i;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t start = i;
      while (i < n && text[i] != '\n') ++i;
      parse_suppression(text.substr(start, i - start), line, !line_has_code,
                        out.suppressions);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t start = i;
      const int start_line = line;
      const bool own_line = !line_has_code;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') newline();
        ++i;
      }
      i = std::min(n, i + 2);
      parse_suppression(text.substr(start, i - start), start_line, own_line,
                        out.suppressions);
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t delim_end = i + 2;
      while (delim_end < n && text[delim_end] != '(') ++delim_end;
      const std::string closer =
          ")" + text.substr(i + 2, delim_end - (i + 2)) + "\"";
      std::size_t end = text.find(closer, delim_end);
      end = end == std::string::npos ? n : end + closer.size();
      for (std::size_t k = i; k < end; ++k) {
        if (text[k] == '\n') newline();
      }
      out.tokens.push_back({TokenKind::kString, "\"\"", line});
      line_has_code = true;
      i = end;
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\') ++i;
        if (i < n && text[i] == '\n') newline();
        ++i;
      }
      ++i;
      out.tokens.push_back({TokenKind::kString, std::string(1, quote), line});
      line_has_code = true;
      continue;
    }
    if (ident_start(c)) {
      const std::size_t start = i;
      while (i < n && ident_char(text[i])) ++i;
      out.tokens.push_back(
          {TokenKind::kIdent, text.substr(start, i - start), line});
      line_has_code = true;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      const std::size_t start = i;
      while (i < n && (ident_char(text[i]) || text[i] == '.')) ++i;
      out.tokens.push_back(
          {TokenKind::kNumber, text.substr(start, i - start), line});
      line_has_code = true;
      continue;
    }
    // Punctuation; `::` and `->` matter to the rules, fuse them.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out.tokens.push_back({TokenKind::kPunct, "::", line});
      i += 2;
    } else if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      out.tokens.push_back({TokenKind::kPunct, "->", line});
      i += 2;
    } else {
      out.tokens.push_back({TokenKind::kPunct, std::string(1, c), line});
      ++i;
    }
    line_has_code = true;
  }
  return out;
}

// ------------------------------------------------------------------ rules

const std::vector<RuleInfo> kRules = {
    {"raw-assert",
     "use QBP_CHECK/QBP_DCHECK (util/check.hpp) instead of assert()"},
    {"raw-thread",
     "std::thread/std::jthread/std::async outside util/parallel bypasses "
     "the deterministic work pool"},
    {"raw-rng",
     "rand()/srand()/std::random_device/drand48 outside util/rng breaks "
     "reproducibility"},
    {"unordered-iter",
     "iterating an unordered container yields implementation-defined order; "
     "iterate a sorted view or switch container"},
    {"unordered-reduce",
     "std::reduce/std::transform_reduce outside util/parallel accumulates "
     "floating point in unspecified order"},
    {"dangling-span",
     "std::span bound to a by-value accessor temporary dangles at the end "
     "of the statement"},
};

/// Accessors that return by value; binding a span to their result dangles.
/// Netlist::sizes() used to belong here until it was fixed to return a
/// reference -- QhatMatrix::omega() legitimately computes its vector.
const std::set<std::string> kByValueAccessors = {"omega"};

bool path_contains(const std::string& path, const char* needle) {
  std::string normalized = path;
  std::replace(normalized.begin(), normalized.end(), '\\', '/');
  return normalized.find(needle) != std::string::npos;
}

/// Directory exemptions: the one sanctioned home for each primitive.
bool rule_exempt(const std::string& rule, const std::string& path) {
  if (rule == "raw-thread" || rule == "unordered-reduce") {
    return path_contains(path, "util/parallel");
  }
  if (rule == "raw-rng") return path_contains(path, "util/rng");
  return false;
}

bool is_suppressed(const TokenizedFile& file, const std::string& rule,
                   int line) {
  if (const auto same = file.suppressions.find(line);
      same != file.suppressions.end() && same->second.rules.count(rule) != 0) {
    return true;
  }
  // A comment-only line covers the next line.
  if (const auto above = file.suppressions.find(line - 1);
      above != file.suppressions.end() && above->second.own_line &&
      above->second.rules.count(rule) != 0) {
    return true;
  }
  return false;
}

struct Linter {
  const std::vector<SourceFile>& files;
  std::vector<TokenizedFile> tokenized;
  /// Variable/member names declared anywhere in the scanned set with an
  /// unordered container type (pass 1; enables cross-file header/cpp
  /// detection in pass 2).
  std::set<std::string> unordered_names;
  std::vector<Finding> findings;

  explicit Linter(const std::vector<SourceFile>& input) : files(input) {
    tokenized.reserve(files.size());
    for (const SourceFile& file : files) tokenized.push_back(tokenize(file.contents));
  }

  void report(std::size_t file_index, const std::string& rule, int line,
              std::string message) {
    const std::string& path = files[file_index].path;
    if (rule_exempt(rule, path)) return;
    if (is_suppressed(tokenized[file_index], rule, line)) return;
    findings.push_back({path, line, rule, std::move(message)});
  }

  // Pass 1: collect names declared with an unordered container type.  The
  // shape matched is `unordered_xxx < ...balanced... > [&] name`, which
  // covers members, locals and parameters in this codebase's style.
  void collect_unordered_names() {
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    for (const TokenizedFile& file : tokenized) {
      const auto& tokens = file.tokens;
      for (std::size_t t = 0; t + 1 < tokens.size(); ++t) {
        if (tokens[t].kind != TokenKind::kIdent ||
            kUnordered.count(tokens[t].text) == 0 ||
            tokens[t + 1].text != "<") {
          continue;
        }
        std::size_t cursor = t + 1;
        int depth = 0;
        while (cursor < tokens.size()) {
          if (tokens[cursor].text == "<") ++depth;
          if (tokens[cursor].text == ">") {
            --depth;
            if (depth == 0) break;
          }
          ++cursor;
        }
        if (cursor == tokens.size()) continue;
        ++cursor;                                            // past `>`
        while (cursor < tokens.size() && (tokens[cursor].text == "&" ||
                                          tokens[cursor].text == "*" ||
                                          tokens[cursor].text == "const")) {
          ++cursor;
        }
        if (cursor < tokens.size() &&
            tokens[cursor].kind == TokenKind::kIdent) {
          unordered_names.insert(tokens[cursor].text);
        }
      }
    }
  }

  void lint_file(std::size_t file_index) {
    const auto& tokens = tokenized[file_index].tokens;

    const auto text_at = [&](std::size_t t) -> const std::string& {
      static const std::string empty;
      return t < tokens.size() ? tokens[t].text : empty;
    };

    for (std::size_t t = 0; t < tokens.size(); ++t) {
      const Token& token = tokens[t];
      if (token.kind != TokenKind::kIdent) continue;
      const bool member_access =
          t > 0 && (tokens[t - 1].text == "." || tokens[t - 1].text == "->");

      // raw-assert: a call to `assert` that is not a member/namespace
      // qualified name of something else.
      if (token.text == "assert" && text_at(t + 1) == "(" && !member_access) {
        report(file_index, "raw-assert", token.line,
               "raw assert(); use QBP_CHECK (always-on boundary) or "
               "QBP_DCHECK (debug-only invariant) from util/check.hpp");
      }

      // raw-thread: std::thread / std::jthread / std::async, except static
      // member access like std::thread::hardware_concurrency().
      if (token.text == "std" && text_at(t + 1) == "::") {
        const std::string& name = text_at(t + 2);
        if ((name == "thread" || name == "jthread") &&
            text_at(t + 3) != "::") {
          report(file_index, "raw-thread", token.line,
                 "std::" + name +
                     " outside util/parallel; use the shared work pool "
                     "(par::Pool) so results stay bit-identical");
        }
        if (name == "async") {
          report(file_index, "raw-thread", token.line,
                 "std::async outside util/parallel; use the shared work "
                 "pool (par::Pool)");
        }
        if (name == "random_device") {
          report(file_index, "raw-rng", token.line,
                 "std::random_device is platform-seeded; derive streams "
                 "from util/rng's seeded SplitMix instead");
        }
        if (name == "reduce" || name == "transform_reduce") {
          report(file_index, "unordered-reduce", token.line,
                 "std::" + name +
                     " accumulates in unspecified order; use the pool's "
                     "ordered reduction");
        }
      }

      // raw-rng: C library randomness.
      if (!member_access && text_at(t + 1) == "(" &&
          (token.text == "rand" || token.text == "srand" ||
           token.text == "drand48" || token.text == "srand48")) {
        report(file_index, "raw-rng", token.line,
               token.text + "() is not reproducible; use util/rng");
      }

      // unordered-iter: `name.begin()` / `name.cbegin()` on a known
      // unordered container variable.
      if (member_access &&
          (token.text == "begin" || token.text == "cbegin") &&
          text_at(t + 1) == "(" && t >= 2 &&
          tokens[t - 2].kind == TokenKind::kIdent &&
          unordered_names.count(tokens[t - 2].text) != 0) {
        report(file_index, "unordered-iter", token.line,
               "iteration over unordered container '" + tokens[t - 2].text +
                   "' has implementation-defined order");
      }

      // unordered-iter: range-for whose range expression names a known
      // unordered container variable.
      if (token.text == "for" && text_at(t + 1) == "(" && !member_access) {
        std::size_t cursor = t + 1;
        int depth = 0;
        std::size_t colon = 0;
        while (cursor < tokens.size()) {
          const std::string& text = tokens[cursor].text;
          if (text == "(") ++depth;
          if (text == ")") {
            --depth;
            if (depth == 0) break;
          }
          if (text == ":" && depth == 1 && colon == 0) colon = cursor;
          ++cursor;
        }
        if (colon != 0 && cursor < tokens.size()) {
          for (std::size_t r = colon + 1; r < cursor; ++r) {
            if (tokens[r].kind == TokenKind::kIdent &&
                unordered_names.count(tokens[r].text) != 0) {
              report(file_index, "unordered-iter", tokens[r].line,
                     "range-for over unordered container '" + tokens[r].text +
                         "' has implementation-defined order");
              break;
            }
          }
        }
      }

      // dangling-span: a statement that declares a span and initializes it
      // from a by-value accessor call (`... span ... = ... .omega() ...;`).
      if (token.text == "span") {
        std::size_t cursor = t + 1;
        std::size_t init = 0;  // first `=` / `{` after the declared name
        int angle = 0;
        while (cursor < tokens.size() && tokens[cursor].text != ";") {
          const std::string& text = tokens[cursor].text;
          if (text == "<") ++angle;
          if (text == ">") --angle;
          if (angle == 0 && (text == "=" || text == "{") && init == 0) {
            init = cursor;
          }
          if (init != 0 && (text == "." || text == "->") &&
              cursor + 2 < tokens.size() &&
              kByValueAccessors.count(tokens[cursor + 1].text) != 0 &&
              tokens[cursor + 2].text == "(") {
            report(file_index, "dangling-span", tokens[cursor + 1].line,
                   "std::span bound to the temporary returned by '" +
                       tokens[cursor + 1].text +
                       "()'; copy into a named vector first");
            break;
          }
          ++cursor;
        }
      }
    }
  }

  std::vector<Finding> lint() {
    collect_unordered_names();
    for (std::size_t f = 0; f < files.size(); ++f) lint_file(f);
    std::sort(findings.begin(), findings.end(),
              [](const Finding& a, const Finding& b) {
                if (a.file != b.file) return a.file < b.file;
                if (a.line != b.line) return a.line < b.line;
                return a.rule < b.rule;
              });
    return std::move(findings);
  }
};

bool has_cpp_extension(const std::filesystem::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hxx" || ext == ".inl";
}

void json_escape(std::ostringstream& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
}

}  // namespace

const std::vector<RuleInfo>& rules() { return kRules; }

std::vector<Finding> lint_files(const std::vector<SourceFile>& files) {
  return Linter(files).lint();
}

std::vector<Finding> run(const std::vector<std::string>& paths,
                         std::string& error) {
  namespace fs = std::filesystem;
  std::vector<std::string> sources;
  for (const std::string& path : paths) {
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (auto it = fs::recursive_directory_iterator(path, ec);
           !ec && it != fs::recursive_directory_iterator(); ++it) {
        if (it->is_regular_file() && has_cpp_extension(it->path())) {
          sources.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      sources.push_back(path);
    } else {
      error = "qbp_lint: cannot read '" + path + "'";
      return {};
    }
  }
  std::sort(sources.begin(), sources.end());

  std::vector<SourceFile> files;
  files.reserve(sources.size());
  for (const std::string& source : sources) {
    std::ifstream in(source, std::ios::binary);
    if (!in) {
      error = "qbp_lint: cannot open '" + source + "'";
      return {};
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.push_back({source, buffer.str()});
  }
  return lint_files(files);
}

std::string to_json(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (i != 0) out << ",";
    out << "\n  {\"file\":\"";
    json_escape(out, findings[i].file);
    out << "\",\"line\":" << findings[i].line << ",\"rule\":\""
        << findings[i].rule << "\",\"message\":\"";
    json_escape(out, findings[i].message);
    out << "\"}";
  }
  out << (findings.empty() ? "]" : "\n]");
  out << "\n";
  return out.str();
}

}  // namespace qbp::lint
