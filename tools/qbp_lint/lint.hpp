// qbp_lint: the repo's determinism & concurrency contract checker.
//
// A dependency-free token-level linter that enforces the project rules the
// compiler cannot (DESIGN.md §14).  It is deliberately not a full C++
// parser: every rule is expressed over a comment- and string-stripped token
// stream, which is exact enough for the house style this tree is written in
// and keeps the tool a single small binary that builds everywhere the
// project does.
//
// Rules (run `qbp_lint --list-rules` for the live catalogue):
//
//   raw-assert      `assert(...)` instead of QBP_CHECK / QBP_DCHECK.  The
//                   contract framework gives messages, counters, fail modes
//                   and NDEBUG-independent boundary checks; raw assert gives
//                   none of that.
//   raw-thread      `std::thread` / `std::jthread` / `std::async` outside
//                   util/parallel.  Ad-hoc threads bypass the deterministic
//                   work pool and its ordered reduction, the foundation of
//                   the bit-identical-results contract.  Static member
//                   access (`std::thread::hardware_concurrency`) is allowed.
//   raw-rng         `rand` / `srand` / `random_device` / `drand48` outside
//                   util/rng.  Unseeded or platform-seeded randomness makes
//                   results non-reproducible.
//   unordered-iter  Range-for or `.begin()` iteration over a variable
//                   declared as std::unordered_map/set anywhere in the
//                   scanned tree.  Unordered iteration order is
//                   implementation-defined, so anything derived from it is
//                   not deterministic.
//   unordered-reduce `std::reduce` / `std::transform_reduce` outside
//                   util/parallel.  Unordered floating-point accumulation
//                   breaks bit-identical results; the Pool's ordered
//                   reduction is the sanctioned alternative.
//   dangling-span   A `std::span` variable initialized from a by-value
//                   accessor call (currently: `omega()`).  The temporary
//                   dies at the end of the statement and the span dangles --
//                   the exact bug class a by-value `Netlist::sizes()` once
//                   caused.
//
// Suppression: append `// qbp-lint: allow(<rule>)` to the offending line,
// or put it on its own comment line immediately above.  Anything after the
// closing parenthesis is free-form rationale.
#pragma once

#include <string>
#include <vector>

namespace qbp::lint {

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string name;
  std::string description;
};

/// The rule catalogue, in reporting order.
[[nodiscard]] const std::vector<RuleInfo>& rules();

/// One in-memory source file; `path` participates in the per-rule directory
/// exemptions (e.g. raw-thread is legal under util/parallel).
struct SourceFile {
  std::string path;
  std::string contents;
};

/// Lint a set of files as one unit.  Unordered-container declarations are
/// collected across *all* files first, so a member declared in a header is
/// caught when iterated in its .cpp.  Findings are sorted by (file, line).
[[nodiscard]] std::vector<Finding> lint_files(
    const std::vector<SourceFile>& files);

/// Walk `paths` (files, or directories scanned recursively for C++ sources),
/// read them and lint.  On I/O failure returns an empty vector and sets
/// `error`.
[[nodiscard]] std::vector<Finding> run(const std::vector<std::string>& paths,
                                       std::string& error);

/// Findings as a JSON array (stable key order; suitable for CI artifacts).
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

}  // namespace qbp::lint
