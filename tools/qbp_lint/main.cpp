// qbp_lint command-line driver.
//
//   qbp_lint [--json] <path>...   lint files / directories (recursively)
//   qbp_lint --list-rules         print the rule catalogue and exit
//
// Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

void print_usage() {
  std::fprintf(stderr,
               "usage: qbp_lint [--json] <path>...\n"
               "       qbp_lint --list-rules\n"
               "\n"
               "Token-level contract checker for the qbpart tree: flags\n"
               "constructs that break determinism or bypass the project's\n"
               "concurrency and contract frameworks.  Suppress one finding\n"
               "with `// qbp-lint: allow(<rule>)` on (or directly above)\n"
               "the offending line.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--list-rules") {
      for (const auto& rule : qbp::lint::rules()) {
        std::printf("%-17s %s\n", rule.name.c_str(), rule.description.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "qbp_lint: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    print_usage();
    return 2;
  }

  std::string error;
  const std::vector<qbp::lint::Finding> findings = qbp::lint::run(paths, error);
  if (!error.empty()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }

  if (json) {
    std::fputs(qbp::lint::to_json(findings).c_str(), stdout);
  } else {
    for (const auto& finding : findings) {
      std::printf("%s:%d: [%s] %s\n", finding.file.c_str(), finding.line,
                  finding.rule.c_str(), finding.message.c_str());
    }
    if (!findings.empty()) {
      std::printf("qbp_lint: %zu finding%s\n", findings.size(),
                  findings.size() == 1 ? "" : "s");
    }
  }
  return findings.empty() ? 0 : 1;
}
